"""Pluggable execution backends for the mining engine.

The candidate-group work of one HLH level (Sec. IV-D: intersect supports,
enumerate instance pairs, grow pattern assignments) is embarrassingly
parallel: groups of the same level never interact, only the finished level
feeds the next one.  :mod:`repro.core.stpm` therefore expresses each level
as a list of *group tasks* -- pure, picklable ``(task) -> outcome``
calls against a read-only :class:`~repro.core.stpm.LevelContext` -- and
hands the list to an executor.  Payloads crossing the pool boundary are
deliberately compact: the broadcast context ships raw HLH tables (each
worker rebuilds its own per-process instance columns and flyweight
caches lazily, see :mod:`repro.core.instance_index`), and the
:class:`~repro.core.stpm.GroupOutcome` results carry assignments in the
column-index encoding -- small int tuples instead of repeated event
instances:

* :class:`SerialExecutor` runs the tasks in order in-process (the default;
  zero overhead, exactly the classical single-threaded miner);
* :class:`ParallelExecutor` fans the tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor` owned by the executor
  *instance*: the pool is spawned lazily on first use and then reused by
  every ``map_tasks`` call -- across HLH levels, across jobs, across a
  whole multigrain hierarchy -- until :meth:`~ParallelExecutor.close`
  (or the context manager / interpreter-exit safety net) releases it.
  Each call broadcasts its level context to the workers first (pickled
  once in the parent, unpickled once per worker), then ships the tasks in
  adaptively sized chunks;
* :class:`ThreadExecutor` fans the tasks out over a reusable
  :class:`concurrent.futures.ThreadPoolExecutor`.  The context is shared
  zero-copy (same object, read-only by contract), which makes threads the
  cheapest backend for small-context levels and for task functions that
  release the GIL; pure-Python group mining stays serialized by the GIL.

All backends preserve the submission order of the results, so a
:class:`~repro.core.results.MiningResult` is identical -- same patterns,
same supports, same season views, same ordering -- whichever backend ran
the level (asserted by the parity tests).

Lifecycle
---------
Executors are context managers and expose ``close()``::

    with ParallelExecutor(max_workers=8) as runner:
        ESTPM(dseq, params, executor=runner).mine()      # spawns the pool
        ESTPM(dseq2, params, executor=runner).mine()     # reuses it

Engine entry points that *resolve a backend name* own the resulting
executor and close it when the job finishes (:func:`executor_scope`);
instances passed in by the caller are never closed -- the caller decides
when the pool dies.  A :func:`weakref.finalize` hook shuts down any pool
still alive at garbage collection or interpreter exit, so an unclosed
executor can never leak worker processes.

Start methods and pool reuse
----------------------------
Under the ``fork`` start method (Linux default) a *fresh* pool inherits
the level context for free via copy-on-write, so per-call pools are
cheap and ``reuse_pool`` defaults to off.  Under ``spawn`` semantics
(macOS/Windows default, and the portable behavior) every pool spawn
boots new interpreters and re-imports the code -- hundreds of
milliseconds per mining level -- so ``reuse_pool`` defaults to on and
one persistent pool serves the whole run.  Both knobs can be forced
explicitly (``ParallelExecutor(reuse_pool=True, start_method="spawn")``),
and the EXT2 benchmark records the measured pool-reuse delta.

Fault tolerance
---------------
Every backend takes a :class:`~repro.resilience.policy.RetryPolicy`.  A
task attempt that raises is retried with deterministic backoff; a task
that exhausts its attempts is quarantined into a
:class:`~repro.resilience.policy.FailedTask` record *in its outcome
slot* instead of killing the job (the miners decide, via their
``strict`` flag, whether that surfaces as an exception).  The process
backend additionally survives pool breaks -- a dead worker, a broken
broadcast barrier, a liveness timeout -- by respawning the pool and
resubmitting only the unfinished tasks, degrading to in-process serial
execution after ``max_pool_breaks`` consecutive breaks.  Attempt bumps
caused by pool breaks are capped below the quarantine threshold, so a
task is only ever quarantined by its *own* failures, never by sharing a
pool with a crashing neighbor.  All of it is observable
(``executor.pool_breaks`` / ``executor.retries`` /
``executor.quarantined`` / ``executor.task_timeouts`` /
``executor.serial_degradations``) and driven in tests by the seeded
fault plans of :mod:`repro.resilience.faults`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager
from functools import partial
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.instance_index import clear_intern_caches
from repro.exceptions import ConfigError
from repro.obs import counters as metrics
from repro.obs.logging import get_logger
from repro.resilience.faults import fault_task_scope, maybe_fault
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    FailedTask,
    RetryPolicy,
    task_key_of,
)

logger = get_logger(__name__)

#: Executor names accepted wherever a backend can be chosen.
EXECUTOR_SERIAL = "serial"
EXECUTOR_PARALLEL = "parallel"
EXECUTOR_THREADS = "threads"
EXECUTOR_BACKENDS = (EXECUTOR_SERIAL, EXECUTOR_PARALLEL, EXECUTOR_THREADS)

#: The per-thread task context (the read-only level state tasks read).
#: Thread-local so the threads backend can run tasks -- including tasks
#: that nest a serial miner, like the hierarchical level tasks -- in many
#: worker threads without trampling each other's context.
_TLS = threading.local()

#: Seconds a worker waits for the rest of the pool during a context
#: broadcast before declaring the pool broken.
_BROADCAST_TIMEOUT = 120.0

#: ``_chunk`` heuristics: levels whose per-worker share is at most
#: ``_REBALANCE_PER_WORKER`` tasks use single-task chunks (best load
#: re-balancing when task counts are skewed); larger levels batch tasks
#: but never more than ``_CHUNK_CAP`` per batch, so a worker that drew a
#: run of expensive groups can still hand work back to the pool.
_REBALANCE_PER_WORKER = 4
_CHUNK_CAP = 128


def _set_task_context(context: Any) -> None:
    """Install the level context in this thread (and, via the pool
    initializer or a broadcast, in worker processes)."""
    _TLS.context = context


def get_task_context() -> Any:
    """The level context installed for the currently running tasks."""
    return getattr(_TLS, "context", None)


class MiningExecutor:
    """Interface of an execution backend.

    ``map_tasks(fn, tasks, context)`` must evaluate ``fn(task)`` for every
    task with ``context`` installed (readable via :func:`get_task_context`)
    and yield the outcomes *in task order*.  The returned iterable must be
    consumed before the next ``map_tasks`` call (the miner does): the task
    context is per-process state, not per-call.

    Executors are context managers; backends that own worker pools release
    them in :meth:`close` (a no-op for poolless backends).
    """

    #: Name of the backend ("serial" / "parallel" / "threads").
    name = "abstract"

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], context: Any
    ) -> Iterable[Any]:
        """Run ``fn`` over ``tasks``; outcomes keep the task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources; safe to call twice (default: no-op)."""

    def release_context(self) -> None:
        """Drop any task context still held by idle workers (default: no-op).

        Called at the end of a job that *keeps* the executor alive (the
        pool-reuse path), so a large level context does not stay pinned
        in every worker while the pool idles between jobs.
        """

    def __enter__(self) -> "MiningExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(MiningExecutor):
    """In-process, in-order execution -- the classical miner."""

    name = EXECUTOR_SERIAL

    def __init__(self, retry: RetryPolicy | None = None):
        self.retry = retry or DEFAULT_RETRY_POLICY

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], context: Any
    ) -> Iterator[Any]:
        """Lazily evaluate the tasks one after another in this process.

        Laziness keeps the classical memory profile: each group outcome is
        registered (and freed) before the next group is mined, instead of
        holding a whole level's outcomes alive at once.  The previous
        context is restored when the iterator is exhausted or closed --
        restored rather than cleared, because tasks may themselves run a
        nested serial miner (the hierarchical miner's level tasks do), and
        in a parallel worker the pool-installed outer context must survive
        the inner run.

        A task that fails all its retry attempts yields a
        :class:`~repro.resilience.policy.FailedTask` in its slot; there
        is no pool to break, so the retry policy's timeout and
        pool-break knobs do not apply here.
        """
        previous = get_task_context()
        _set_task_context(context)
        policy = self.retry

        def _run() -> Iterator[Any]:
            try:
                for index, task in enumerate(tasks):
                    yield _attempt_task(fn, task, index, 0, policy)
            finally:
                _set_task_context(previous)

        return _run()


# ---------------------------------------------------------------------------
# Worker-side plumbing of the persistent process pool
# ---------------------------------------------------------------------------

#: Barrier shared by the workers of one persistent pool (installed by the
#: pool initializer); coordinates the per-call context broadcasts.
_WORKER_BARRIER = None


def _init_worker(barrier) -> None:
    """Pool initializer of a persistent pool: remember the broadcast
    barrier (the context itself arrives later, per ``map_tasks`` call)."""
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier


def _receive_context(blob: bytes) -> bool:
    """One worker's share of a context broadcast.

    The parent submits exactly ``max_workers`` of these per ``map_tasks``
    call.  Each worker that picked one up blocks on the barrier until
    every worker holds a context, which guarantees no worker receives two
    broadcasts (it cannot finish before the last worker started) and no
    worker runs a task against a stale context.

    A ``None`` context is the end-of-job release broadcast: besides
    dropping the level context, the worker also clears its flyweight
    pattern/triple caches so an idle kept pool pins no mining state at
    all (see :func:`repro.core.instance_index.clear_intern_caches`).
    """
    context = pickle.loads(blob)
    _set_task_context(context)
    if context is None:
        clear_intern_caches()
    try:
        _WORKER_BARRIER.wait(timeout=_BROADCAST_TIMEOUT)
    except threading.BrokenBarrierError:
        # A peer missed the rendezvous (died mid-broadcast, or the wait
        # timed out).  Abort explicitly so every sibling unblocks *now*
        # instead of burning its own full timeout, then surface the
        # break to the parent, whose recovery loop recycles the pool --
        # a broken barrier never reforms -- and resubmits the level.
        _WORKER_BARRIER.abort()
        raise
    return True


def _release_pool(pool) -> None:
    """Finalizer payload: shut a pool down without blocking GC/exit."""
    pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# Cross-process metric shipping
# ---------------------------------------------------------------------------


def _call_with_metrics(fn: Callable[[Any], Any], task: Any) -> tuple[Any, dict]:
    """Worker-side task wrapper: run one task under a fresh metric
    capture and ship ``(outcome, metric snapshot)`` back to the parent.

    Module-level (and wrapped via :func:`functools.partial`) so the
    envelope pickles under every start method.  :func:`~repro.obs.counters.capture`
    force-enables metrics in the worker, so spawn-started workers --
    which do not inherit the parent's enabled flag -- still count.
    """
    with metrics.capture() as registry:
        outcome = fn(task)
    return outcome, registry.snapshot()


def _merge_enveloped(results: list[tuple[Any, dict]]) -> list[Any]:
    """Unwrap enveloped outcomes in order, merging each worker snapshot
    into the parent's (caller-thread) registry."""
    outcomes = []
    for outcome, snapshot in results:
        metrics.merge(snapshot)
        outcomes.append(outcome)
    return outcomes


# ---------------------------------------------------------------------------
# Resilient task execution (all backends)
# ---------------------------------------------------------------------------

#: Exceptions that mean "the pool is gone", not "the task failed":
#: a dead worker process (BrokenProcessPool) or a broadcast barrier
#: that could not reform (a worker died mid-rendezvous).  The recovery
#: loop respawns the pool and resubmits the unfinished tasks.
_POOL_BREAK_ERRORS = (BrokenExecutor, threading.BrokenBarrierError)


def _attempt_task(
    fn: Callable[[Any], Any],
    task: Any,
    index: int,
    start_attempt: int,
    policy: RetryPolicy,
) -> Any:
    """Run one task with bounded in-process retries.

    Returns the task outcome, or a :class:`FailedTask` once
    ``policy.max_attempts`` attempts (counting ``start_attempt`` ones
    already consumed by pool breaks) have failed.  Never raises for a
    task-level failure -- only BaseExceptions (worker kill, interrupt)
    escape.  Each attempt consults the fault plan inside a
    :func:`fault_task_scope`, so injected faults target only the
    outermost dispatch, not miners nested inside a worker's task.
    """
    key = task_key_of(task)
    attempt = start_attempt
    while True:
        try:
            with fault_task_scope():
                maybe_fault("task", index=index, key=key, attempt=attempt)
                return fn(task)
        except Exception as exc:
            attempt += 1
            if attempt >= policy.max_attempts:
                metrics.inc("executor.quarantined")
                logger.warning(
                    "task quarantined",
                    extra={"task": key, "attempts": attempt, "error": repr(exc)},
                )
                return FailedTask(key=key, error=repr(exc), attempts=attempt)
            metrics.inc("executor.retries")
            delay = policy.backoff_s(key, attempt)
            logger.debug(
                "task retry",
                extra={"task": key, "attempt": attempt, "backoff_s": delay},
            )
            if delay > 0:
                time.sleep(delay)


def _run_resilient_batch(
    fn: Callable[[Any], Any],
    policy: RetryPolicy,
    track: bool,
    specs: list[tuple[int, int, Any]],
) -> list[tuple[int, Any, dict | None]]:
    """Worker-side batch runner: ``(index, start_attempt, task)`` specs
    in, ``(index, payload, metric snapshot)`` triples out.

    Module-level (shipped via :func:`functools.partial`) so it pickles
    under every start method.  Results carry their task index because
    the parent's recovery loop tracks completion per *task*, not per
    batch -- a pool break loses only the batches still in flight.
    """
    results: list[tuple[int, Any, dict | None]] = []
    for index, start_attempt, task in specs:
        if track:
            with metrics.capture() as registry:
                payload = _attempt_task(fn, task, index, start_attempt, policy)
            results.append((index, payload, registry.snapshot()))
        else:
            results.append(
                (index, _attempt_task(fn, task, index, start_attempt, policy), None)
            )
    return results


class ParallelExecutor(MiningExecutor):
    """Process-pool execution with a reusable pool and chunked batching.

    Parameters
    ----------
    max_workers:
        Worker processes (default: ``os.cpu_count()``).
    chunk_size:
        Tasks per inter-process batch; ``None`` picks an adaptive size:
        single-task chunks while a worker's share is small (skewed levels
        re-balance instead of serializing behind one big chunk), then
        ``ceil(n / (4 * workers))`` capped at 128 so every worker sees a
        handful of batches and stragglers can shed load.
    min_tasks:
        Levels with fewer tasks than this run serially in-process -- even
        a reused pool costs a context broadcast, which a near-empty level
        never amortizes.  Must be >= 1.
    reuse_pool:
        ``True``: one lazily-spawned pool serves every ``map_tasks`` call
        until :meth:`close`; each call broadcasts its context (pickled
        once, unpickled once per worker).  ``False``: a fresh pool per
        call, context shipped via the pool initializer (free under
        ``fork`` -- copy-on-write).  ``None`` (default) picks ``True``
        exactly when the effective start method is not ``fork``, i.e.
        whenever pool spawns actually cost interpreter boots.
    start_method:
        Multiprocessing start method (``"fork"`` / ``"spawn"`` /
        ``"forkserver"``); ``None`` uses the platform default.
    retry:
        The :class:`~repro.resilience.policy.RetryPolicy` governing task
        retries, quarantine, per-task timeouts, and the pool-break
        budget (default: :data:`~repro.resilience.policy.DEFAULT_RETRY_POLICY`).
        ``retry.timeout_s`` forces single-task chunks so the liveness
        watchdog sees per-task progress.
    """

    name = EXECUTOR_PARALLEL

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        min_tasks: int = 2,
        reuse_pool: bool | None = None,
        start_method: str | None = None,
        retry: RetryPolicy | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        if min_tasks < 1:
            raise ConfigError(
                f"min_tasks must be >= 1, got {min_tasks} (1 disables the "
                "serial fallback for small levels)"
            )
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                f"unknown start method {start_method!r}; this platform "
                f"supports {multiprocessing.get_all_start_methods()}"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.min_tasks = min_tasks
        self.start_method = start_method
        self.retry = retry or DEFAULT_RETRY_POLICY
        if reuse_pool is None:
            reuse_pool = self._effective_start_method() != "fork"
        self.reuse_pool = reuse_pool
        self._pool: ProcessPoolExecutor | None = None
        self._finalizer = None

    def _effective_start_method(self) -> str:
        return self.start_method or multiprocessing.get_start_method()

    def _mp_context(self):
        return multiprocessing.get_context(self.start_method)

    def _chunk(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        per_worker = -(-n_tasks // self.max_workers)
        if per_worker <= _REBALANCE_PER_WORKER:
            return 1
        return max(1, min(-(-n_tasks // (4 * self.max_workers)), _CHUNK_CAP))

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, spawning it on first use."""
        if self._pool is None:
            context = self._mp_context()
            barrier = context.Barrier(self.max_workers)
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(barrier,),
            )
            # Safety net: release the workers at GC / interpreter exit
            # even if the owner forgot to close().
            self._finalizer = weakref.finalize(self, _release_pool, self._pool)
            metrics.inc("executor.pool_spawns")
            logger.info(
                "process pool spawned",
                extra={
                    "workers": self.max_workers,
                    "start_method": self._effective_start_method(),
                    "persistent": True,
                },
            )
        else:
            metrics.inc("executor.pool_reuses")
        return self._pool

    def close(self) -> None:
        """Shut the persistent pool down (idempotent; respawns lazily).

        The pool reference is dropped *before* the blocking shutdown, so
        a second ``close()`` -- including one issued by interrupt
        cleanup while the first is still joining workers -- is a no-op
        rather than a double shutdown.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except BaseException:
                # Interrupted mid-join (Ctrl-C): release the workers
                # without blocking and let the interrupt propagate.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            metrics.inc("executor.pool_closes")
            logger.info("process pool closed", extra={"workers": self.max_workers})

    def release_context(self) -> None:
        """Broadcast an empty context so idle workers pin no mining state."""
        if self._pool is None:
            return
        try:
            self._broadcast(self._pool, None)
        except Exception:
            # A pool that cannot even take a broadcast is broken; release
            # it so the next job starts clean.
            self.close()

    def _broadcast(self, pool: ProcessPoolExecutor, context: Any) -> None:
        """Install ``context`` in every worker of the persistent pool.

        The context is pickled once here; each worker unpickles its own
        copy.  Submitting ``max_workers`` barrier-synchronized receive
        tasks also forces the lazily-spawning pool to bring every worker
        up, so the subsequent chunked map never waits on a cold start.
        """
        blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        metrics.inc("executor.broadcasts")
        logger.debug(
            "context broadcast",
            extra={"bytes": len(blob), "workers": self.max_workers},
        )
        futures = [
            pool.submit(_receive_context, blob) for _ in range(self.max_workers)
        ]
        for future in futures:
            future.result()

    # -- dispatch -------------------------------------------------------

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], context: Any
    ) -> Iterable[Any]:
        """Fan the tasks out over worker processes, preserving order.

        Tasks are shipped in chunked batches and their outcomes slotted
        back by task index, which makes the parallel mining result
        byte-identical to the serial one.  The context lives in the
        *workers* (broadcast, or pool initializer in per-call mode) and
        is replaced by the next call's broadcast; the parent process
        buffers only the outcomes.

        Dispatch is resilient: a pool break (dead worker, broken
        broadcast barrier, liveness timeout) respawns the pool and
        resubmits only the unfinished tasks; after
        ``retry.max_pool_breaks`` consecutive breaks the remaining
        tasks run serially in-process.  Task-level failures retry per
        the policy inside the worker and quarantine into
        :class:`FailedTask` slots.
        """
        n_tasks = len(tasks)
        if n_tasks < self.min_tasks or self.max_workers == 1:
            metrics.inc("executor.serial_fallbacks")
            return SerialExecutor(retry=self.retry).map_tasks(fn, tasks, context)
        track = metrics.metrics_enabled()
        if track:
            metrics.inc("executor.map_calls")
            metrics.inc("executor.tasks_dispatched", n_tasks)
        logger.debug(
            "dispatching tasks",
            extra={
                "backend": self.name,
                "tasks": n_tasks,
                "workers": self.max_workers,
            },
        )
        return self._map_resilient(fn, tasks, context, track)

    def _acquire_pool(
        self, context: Any, n_pending: int
    ) -> tuple[ProcessPoolExecutor, bool]:
        """A pool with ``context`` installed in its workers.

        Returns ``(pool, owned)``: the persistent broadcast pool
        (``owned=False``) in reuse mode, or a fresh per-call pool with
        the context shipped via the initializer (``owned=True``).
        Raises a pool-break error if the broadcast cannot complete.
        """
        if self.reuse_pool:
            pool = self._ensure_pool()
            self._broadcast(pool, context)
            return pool, False
        metrics.inc("executor.pool_spawns")
        pool = ProcessPoolExecutor(
            max_workers=min(self.max_workers, n_pending),
            mp_context=self._mp_context(),
            initializer=_set_task_context,
            initargs=(context,),
        )
        return pool, True

    def _map_resilient(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        context: Any,
        track: bool,
    ) -> list[Any]:
        """The recovery loop behind :meth:`map_tasks`.

        Each round acquires a pool, submits the still-unfinished tasks
        in chunked batches (single-task batches when ``retry.timeout_s``
        is set, so the liveness watchdog observes per-task progress),
        and harvests completions as they land.  A round that ends in a
        pool break bumps the attempt counters of the unfinished tasks --
        capped at ``max_attempts - 1``, so a break alone can never
        quarantine a task -- recycles the pool, and goes again; after
        ``max_pool_breaks`` *consecutive* broken rounds the remaining
        tasks run serially in this process.  Worker metric snapshots are
        buffered per task and merged in task order at the end, keeping
        gauge last-write-wins semantics identical to a serial run.
        """
        policy = self.retry
        n_tasks = len(tasks)
        payloads: list[Any] = [None] * n_tasks
        snapshots: list[dict | None] = [None] * n_tasks
        start_attempt = [0] * n_tasks
        remaining = set(range(n_tasks))
        consecutive_breaks = 0
        call = partial(_run_resilient_batch, fn, policy, track)

        def _bump(index: int) -> None:
            start_attempt[index] = min(
                start_attempt[index] + 1, policy.max_attempts - 1
            )

        while remaining:
            if consecutive_breaks > policy.max_pool_breaks:
                metrics.inc("executor.serial_degradations")
                logger.warning(
                    "pool broke repeatedly; degrading to serial execution",
                    extra={
                        "pool_breaks": consecutive_breaks,
                        "remaining": len(remaining),
                    },
                )
                self._run_degraded(
                    fn, tasks, context, policy, payloads, start_attempt, remaining
                )
                break
            pending = sorted(remaining)
            try:
                pool, owned = self._acquire_pool(context, len(pending))
            except _POOL_BREAK_ERRORS:
                consecutive_breaks += 1
                metrics.inc("executor.pool_breaks")
                logger.warning(
                    "pool broke during context broadcast",
                    extra={"pool_breaks": consecutive_breaks},
                )
                self.close()
                continue
            chunk = 1 if policy.timeout_s is not None else self._chunk(len(pending))
            if track:
                metrics.observe("executor.chunk_size", chunk)
            broken = False
            try:
                futures: dict[Any, list[int]] = {}
                try:
                    for lo in range(0, len(pending), chunk):
                        batch = pending[lo : lo + chunk]
                        specs = [(i, start_attempt[i], tasks[i]) for i in batch]
                        futures[pool.submit(call, specs)] = batch
                except _POOL_BREAK_ERRORS:
                    broken = True
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(
                        not_done, timeout=policy.timeout_s,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # No task finished within the per-task budget:
                        # some worker is stuck, and a stuck worker can
                        # only be reclaimed by recycling the pool.
                        broken = True
                        metrics.inc("executor.task_timeouts", len(not_done))
                        logger.warning(
                            "no task progress within timeout",
                            extra={
                                "timeout_s": policy.timeout_s,
                                "stuck_batches": len(not_done),
                            },
                        )
                        for future in not_done:
                            future.cancel()
                            for index in futures[future]:
                                _bump(index)
                        break
                    for future in done:
                        batch = futures[future]
                        try:
                            results = future.result()
                        except _POOL_BREAK_ERRORS:
                            broken = True
                            for index in batch:
                                if index in remaining:
                                    _bump(index)
                            continue
                        for index, payload, snapshot in results:
                            payloads[index] = payload
                            snapshots[index] = snapshot
                            remaining.discard(index)
            except Exception:
                # Anything that is not a pool break (an unpicklable
                # payload, a bug in the dispatch itself) keeps the old
                # contract: release the pool and raise.
                if owned:
                    pool.shutdown(wait=False, cancel_futures=True)
                else:
                    self.close()
                raise
            if owned:
                pool.shutdown(wait=not broken, cancel_futures=True)
            if broken:
                consecutive_breaks += 1
                metrics.inc("executor.pool_breaks")
                if not owned:
                    # The persistent pool (and its barrier) is dead;
                    # _ensure_pool respawns both next round.
                    self.close()
                logger.warning(
                    "process pool broke; resubmitting unfinished tasks",
                    extra={
                        "pool_breaks": consecutive_breaks,
                        "remaining": len(remaining),
                    },
                )
            else:
                consecutive_breaks = 0
        outcomes: list[Any] = []
        for index in range(n_tasks):
            snapshot = snapshots[index]
            if snapshot is not None:
                metrics.merge(snapshot)
            outcomes.append(payloads[index])
        return outcomes

    def _run_degraded(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        context: Any,
        policy: RetryPolicy,
        payloads: list[Any],
        start_attempt: list[int],
        remaining: set[int],
    ) -> None:
        """Serial last resort: run the unfinished tasks in this process.

        Attempt counters carry over from the pool rounds, so a task
        that already burned attempts keeps its (capped) budget; metrics
        record directly into the caller's registry (no snapshot
        envelope).  The per-task timeout is unenforceable without a
        pool and is documented as such.
        """
        previous = get_task_context()
        _set_task_context(context)
        try:
            for index in sorted(remaining):
                payloads[index] = _attempt_task(
                    fn, tasks[index], index, start_attempt[index], policy
                )
            remaining.clear()
        finally:
            _set_task_context(previous)


class ThreadExecutor(MiningExecutor):
    """Thread-pool execution with a reusable pool and zero-copy contexts.

    The worker threads share the caller's address space, so the level
    context is installed by reference -- no pickling, no broadcast --
    which makes this the cheapest backend for small-context levels.  The
    context is installed into each worker thread's *thread-local* slot
    around every task, so tasks that nest a serial miner (the
    hierarchical level tasks) stay isolated from their neighbors.  Note
    that pure-Python group mining is still serialized by the GIL; the
    backend pays off when tasks release it or when avoiding process
    spawn/IPC is the point.

    Parameters
    ----------
    max_workers:
        Worker threads (default: ``os.cpu_count()``).
    min_tasks:
        Levels with fewer tasks than this run serially in-process.
    retry:
        Task retry/quarantine policy (threads share the process, so the
        pool-break and timeout knobs do not apply).
    """

    name = EXECUTOR_THREADS

    def __init__(
        self,
        max_workers: int | None = None,
        min_tasks: int = 2,
        retry: RetryPolicy | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if min_tasks < 1:
            raise ConfigError(
                f"min_tasks must be >= 1, got {min_tasks} (1 disables the "
                "serial fallback for small levels)"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.min_tasks = min_tasks
        self.retry = retry or DEFAULT_RETRY_POLICY
        self._pool: ThreadPoolExecutor | None = None
        self._finalizer = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-mine"
            )
            self._finalizer = weakref.finalize(self, _release_pool, self._pool)
            metrics.inc("executor.pool_spawns")
            logger.info(
                "thread pool spawned", extra={"workers": self.max_workers}
            )
        else:
            metrics.inc("executor.pool_reuses")
        return self._pool

    def close(self) -> None:
        """Shut the thread pool down (idempotent; respawns lazily)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            pool.shutdown(wait=True, cancel_futures=True)
            metrics.inc("executor.pool_closes")
            logger.info("thread pool closed", extra={"workers": self.max_workers})

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], context: Any
    ) -> Iterable[Any]:
        """Fan the tasks out over worker threads, preserving order."""
        n_tasks = len(tasks)
        if n_tasks < self.min_tasks or self.max_workers == 1:
            metrics.inc("executor.serial_fallbacks")
            return SerialExecutor(retry=self.retry).map_tasks(fn, tasks, context)
        pool = self._ensure_pool()
        # Worker threads record into their own thread-local registries,
        # so metric shipping works exactly like the process pool's: each
        # task runs under a capture and the caller thread merges the
        # snapshots in task order.
        track = metrics.metrics_enabled()
        if track:
            metrics.inc("executor.map_calls")
            metrics.inc("executor.tasks_dispatched", n_tasks)
        logger.debug(
            "dispatching tasks",
            extra={
                "backend": self.name,
                "tasks": n_tasks,
                "workers": self.max_workers,
            },
        )

        policy = self.retry

        def run(spec: tuple[int, Any]) -> Any:
            index, task = spec
            previous = get_task_context()
            _set_task_context(context)
            try:
                if track:
                    with metrics.capture() as registry:
                        payload = _attempt_task(fn, task, index, 0, policy)
                    return payload, registry.snapshot()
                return _attempt_task(fn, task, index, 0, policy)
            finally:
                _set_task_context(previous)

        results = list(pool.map(run, enumerate(tasks)))
        return _merge_enveloped(results) if track else results


#: Process-wide default backend (see :func:`set_default_executor`).
_DEFAULT_EXECUTOR: MiningExecutor | str = EXECUTOR_SERIAL


def resolve_executor(
    spec: MiningExecutor | str | None, n_workers: int | None = None
) -> MiningExecutor:
    """Turn an executor spec (instance, name, or ``None``) into an instance.

    ``None`` resolves to the process-wide default; ``n_workers`` sizes the
    pool when a *name* is resolved.  Explicitly combining an instance with
    ``n_workers`` is rejected: the instance already fixed its pool size,
    and silently ignoring the request would mine with the wrong width.
    (When the instance only arrives via the process-wide *default*,
    ``n_workers`` is ignored instead -- the caller never chose it, and a
    harness-installed shared pool must keep serving jobs that merely
    carry a worker-count preference.)
    """
    explicit = spec is not None
    if spec is None:
        spec = _DEFAULT_EXECUTOR
    if isinstance(spec, MiningExecutor):
        if n_workers is not None and explicit:
            raise ConfigError(
                f"n_workers={n_workers} conflicts with the provided "
                f"{type(spec).__name__} instance (its pool size is fixed at "
                "construction); size the instance instead, or pass the "
                "backend by name"
            )
        return spec
    if spec == EXECUTOR_SERIAL:
        return SerialExecutor()
    if spec == EXECUTOR_PARALLEL:
        return ParallelExecutor(max_workers=n_workers)
    if spec == EXECUTOR_THREADS:
        return ThreadExecutor(max_workers=n_workers)
    raise ConfigError(
        f"unknown executor {spec!r}; choose from {EXECUTOR_BACKENDS}"
    )


@contextmanager
def executor_scope(
    spec: MiningExecutor | str | None, n_workers: int | None = None
) -> Iterator[MiningExecutor]:
    """Resolve an executor spec for one job, owning what it creates.

    Engine entry points (:class:`~repro.core.stpm.ESTPM`,
    :class:`~repro.multigrain.engine.HierarchicalMiner`, ...) run their
    dispatches inside this scope: a backend resolved from a *name* (or
    from a name-valued process default) is closed when the job finishes,
    so per-job pools never outlive the job; an *instance* -- the pool-reuse
    path -- stays alive for the caller's next job, but its workers drop the
    finished job's task context (:meth:`MiningExecutor.release_context`)
    so no mining state stays pinned while the pool idles.

    The scope exit also clears this process's flyweight pattern/triple
    caches (:func:`repro.core.instance_index.clear_intern_caches`): a
    live job's interned objects are all referenced by its HLH structures
    and results anyway, so the caches only *pin* patterns of finished
    jobs -- exactly what a job-scoped clear releases.  (Nested scopes --
    A-STPM around its inner E-STPM, hierarchical level jobs -- just
    re-intern at two dict probes per distinct pattern.)
    """
    effective = _DEFAULT_EXECUTOR if spec is None else spec
    owned = not isinstance(effective, MiningExecutor)
    runner = resolve_executor(spec, n_workers)
    try:
        yield runner
    finally:
        if owned:
            runner.close()
        else:
            runner.release_context()
        clear_intern_caches()


def default_executor() -> MiningExecutor | str:
    """The process-wide default executor spec."""
    return _DEFAULT_EXECUTOR


def set_default_executor(spec: MiningExecutor | str) -> MiningExecutor | str:
    """Set the process-wide default executor; returns the previous spec.

    Like :func:`repro.core.supportset.set_default_backend`, this lets the
    harness flip whole experiment runs between backends without threading
    a parameter through every experiment function.  Installing an executor
    *instance* shares its (persistent) pool across every job that resolves
    the default -- the harness's pool-reuse mode; the caller keeps
    ownership and closes it when the run ends.
    """
    global _DEFAULT_EXECUTOR
    previous = _DEFAULT_EXECUTOR
    if isinstance(spec, str):
        resolve_executor(spec)  # validate the name
    _DEFAULT_EXECUTOR = spec
    return previous
