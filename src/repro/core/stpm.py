"""E-STPM: the exact Seasonal Temporal Pattern Mining algorithm (Alg. 1).

The miner follows the paper's two mining steps on a temporal sequence
database ``DSEQ``:

* **Step 2.1** -- mine frequent seasonal single events: one scan of DSEQ
  computes every event's support set; events passing the ``maxSeason``
  candidate gate populate ``HLH1``; candidates passing the full seasonal
  check (maxPeriod / minDensity / distInterval / minSeason) are frequent.
* **Step 2.2** -- mine frequent seasonal k-event patterns, k >= 2:
  candidate k-event groups come from the Cartesian product
  ``F_{k-1} x FilteredF1`` with support-set intersection; patterns are
  grown by extending the (k-1)-pattern assignments stored in ``GH_{k-1}``
  with instances of the new event, verifying each new relation triple
  against the candidate 2-event patterns (the Iterative Check of
  Sec. IV-D 4.2.2).

Pruning is controlled by :class:`~repro.core.prune.PruningConfig`:
``apriori`` applies the maxSeason candidate gates (Lemmas 1-2);
``transitivity`` restricts F1 to events present in HLH_{k-1} patterns
(Lemmas 3-4).  Both are lossless.

Engine architecture
-------------------
Support sets live behind :class:`~repro.core.supportset.SupportSet`
(big-int bitsets by default, classical sorted lists for parity), so every
group intersection is a C-level ``&`` and every maxSeason gate a
``bit_count()``.  The per-group work of step 2.2 -- intersect supports,
enumerate instance pairs, grow assignments -- is expressed as pure,
picklable *group tasks* (:func:`mine_pair_task` / :func:`mine_extension_task`
against a read-only :class:`LevelContext`) dispatched through a
:class:`~repro.core.executor.MiningExecutor`.  The serial executor
reproduces the classical single-threaded miner; the parallel executor fans
the tasks over a process pool.  Outcomes are consumed in task order, so
the :class:`~repro.core.results.MiningResult` is identical across
backends.

The step-2.2 inner loops run on the columnar instance index
(:mod:`repro.core.instance_index`): per ``(event, granule)`` start-sorted
start/end columns, a two-pointer sweep join with bulk Follows tails for
pair enumeration, index-keyed relation caches for the Iterative Check,
flyweight-interned triples/patterns, and compact column-index assignment
encodings in ``GH_k`` and in the pickled :class:`GroupOutcome` payloads.
The pre-index loops survive as ``kernel="reference"``
(:mod:`repro.core._kernel_reference`) for parity tests and benchmarks.

The optional ``series_filter`` / ``pair_filter`` hooks implement A-STPM's
search-space reduction (only mine events of correlated series and 2-event
groups of correlated series pairs); plain E-STPM leaves them ``None``.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from itertools import combinations_with_replacement

from repro.core._kernel_reference import (
    reference_collect_pair_patterns,
    reference_extend_group_patterns,
)
from repro.core.array_kernel import (
    array_collect_pair_patterns,
    array_extend_group_patterns,
)
from repro.core.config import MiningParams
from repro.core.executor import MiningExecutor, executor_scope, get_task_context
from repro.core.hlh import HLH1, Assignment, HLHk
from repro.core.instance_index import (
    KERNEL_ARRAY,
    KERNEL_REFERENCE,
    KERNEL_SWEEP,
    default_kernel,
    intern_pair_pattern,
    intern_pattern,
    intern_triple,
    validate_kernel,
)
from repro.core.pattern import (
    TemporalPattern,
    Triple,
    single_event_pattern,
    splice_triples,
)
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import (
    compute_seasons,
    count_seasons_batch,
    is_candidate,
    is_frequent_seasonal,
)
from repro.core.supportset import (
    SupportLike,
    SupportSet,
    default_backend,
    make_support_set,
    validate_backend,
)
from repro.events.relations import CONTAINS, FOLLOWS, OVERLAPS
from repro.exceptions import MiningError
from repro.obs import counters as metrics
from repro.obs.trace import span
from repro.resilience.policy import FailedTask, task_key_of
from repro.transform.sequence_db import TemporalSequenceDatabase

#: Cache sentinel of the extension kernel's per-granule relation cache:
#: "computed, and the pair has no relation" (``None`` means "not yet
#: computed", so misses never collide with negative verdicts).
_NO_RELATION = object()


def kernel_functions(kernel: str):
    """``(collect_pair_patterns, extend_group_patterns)`` of one kernel.

    The registry behind every dispatch site -- group tasks, the
    streaming miner, tests.  All kernels share one signature and produce
    ``results_equivalent`` output; they differ only in data plane
    (``array``: vectorized bulk boundaries + batched classification;
    ``sweep``: the PR 5 tuple two-pointer; ``reference``: pre-index
    object-at-a-time loops).
    """
    validate_kernel(kernel)
    return _KERNEL_FUNCTIONS[kernel]


def series_of(event: str) -> str:
    """The series name of an event key ``series:symbol``."""
    return event.rsplit(":", 1)[0]


# ---------------------------------------------------------------------------
# Group tasks: the pure, picklable per-group unit of work
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelContext:
    """Read-only state shared by every group task of one HLH level.

    Shipped once per worker process (pool initializer) rather than once
    per task; tasks themselves are tiny key tuples into these tables.
    """

    params: MiningParams
    apriori: bool
    hlh1: HLH1
    previous: HLHk | None = None
    candidate_triples: frozenset[Triple] | None = None
    #: Step-2.2 kernel the level's tasks run: the vectorized array
    #: kernel (default), the PR 5 columnar sweep join, or the pre-index
    #: reference loops.  Part of the context so the choice reaches pool
    #: workers under any start method.
    kernel: str = KERNEL_ARRAY


@dataclass(frozen=True)
class GroupOutcome:
    """What one group task produced.

    ``support is None`` means the group failed the maxSeason candidate
    gate and contributes nothing to the level.
    """

    group: tuple[str, ...]
    support: SupportSet | None
    pattern_support: dict[TemporalPattern, list[int]]
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]]


def collect_pair_patterns(
    hlh1: HLH1,
    event_a: str,
    event_b: str,
    granules,
    relation,
    pattern_support: dict[TemporalPattern, list[int]],
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]],
) -> None:
    """Enumerate the related instance pairs of one event pair per granule.

    The per-granule inner loop of step 2.2 (k = 2), shared by the batch
    miner (which walks the full group support) and the streaming miner
    (which walks only the tail granules of an advance).  ``granules`` must
    be ascending; results accumulate into the two dictionaries in place.

    Sweep join
    ----------
    Instead of classifying the full instance product through
    :func:`~repro.events.relations.relation_of_pair`, the kernel walks
    the two start-sorted instance columns (:meth:`HLH1.column_of`) with
    amortized two-pointer bounds per ``a``-instance:

    * every ``b`` whose end lies at least ``epsilon + 1`` before
      ``a.start`` is an unconditional ``b -> a`` Follows (no Contains
      can fire), appended in bulk without classification;
    * symmetrically, every ``b`` starting at least ``epsilon + 1`` after
      ``a.end`` is an unconditional ``a -> b`` Follows -- with
      ``epsilon = 0`` this tail is *every* Follows pair, so dense
      granules skip per-pair branching almost entirely;
    * only the remaining window is classified pair by pair, inlining the
      comparisons of :func:`~repro.events.relations.relation_of_bounds`
      on the raw start/end columns.

    Accepted pairs are recorded against flyweight-interned patterns as
    compact column-index assignments ``(earlier_index, later_index)``
    (see :mod:`repro.core.instance_index`), in exactly the order the
    reference product enumeration would emit them.
    """
    epsilon = relation.epsilon
    min_overlap = relation.min_overlap
    #: (relation, first, second) -> (support list, per-granule assignments)
    entries: dict[tuple[str, str, str], tuple[list, dict]] = {}

    def _bucket(key: tuple[str, str, str], granule: int) -> list:
        """The assignment list of one pattern at one granule, marking the
        granule in the pattern's support on first use."""
        entry = entries.get(key)
        if entry is None:
            pattern = intern_pair_pattern(*key)
            entry = entries[key] = (
                pattern_support.setdefault(pattern, []),
                pattern_assignments.setdefault(pattern, {}),
            )
        support_list, by_granule = entry
        if not support_list or support_list[-1] != granule:
            support_list.append(granule)
        bucket = by_granule.get(granule)
        if bucket is None:
            bucket = by_granule[granule] = []
        return bucket

    same = event_a == event_b
    follows_ab = (FOLLOWS, event_a, event_b)
    follows_ba = (FOLLOWS, event_b, event_a)
    # Telemetry: bulk vs near-window classification split.  One flag
    # read per call; the per-``i`` accumulations below only run when
    # metrics are enabled, keeping the disabled hot loop untouched.
    track = metrics.metrics_enabled()
    n_bulk = 0
    n_near = 0
    for granule in granules:
        column_a = hlh1.column_of(event_a, granule)
        n_a = len(column_a.starts)
        if n_a == 0:
            continue
        starts_a = column_a.starts
        ends_a = column_a.ends
        buckets: dict[tuple[str, str, str], list] = {}

        if same:
            # Distinct-instance pairs of one column: instance i always
            # precedes j > i chronologically (same-event runs are
            # disjoint), so only the near window past each i needs
            # classifying; the rest is a bulk Follows tail.
            tail = 0
            for i in range(n_a):
                start_i = starts_a[i]
                end_i = ends_a[i]
                if tail <= i:
                    tail = i + 1
                threshold = end_i + epsilon + 1
                while tail < n_a and starts_a[tail] < threshold:
                    tail += 1
                if track:
                    n_near += tail - (i + 1)
                    n_bulk += n_a - tail
                for j in range(i + 1, tail):
                    start_j = starts_a[j]
                    end_j = ends_a[j]
                    if start_i <= start_j and end_j <= end_i + epsilon:
                        rel = CONTAINS
                    elif start_j >= end_i + 1 - epsilon:
                        rel = FOLLOWS
                    elif (
                        start_i < start_j
                        and end_i + epsilon < end_j
                        and end_i + 1 - start_j >= min_overlap - epsilon
                    ):
                        rel = OVERLAPS
                    else:
                        continue
                    key = (rel, event_a, event_a)
                    bucket = buckets.get(key)
                    if bucket is None:
                        bucket = buckets[key] = _bucket(key, granule)
                    bucket.append((i, j))
                if tail < n_a:
                    bucket = buckets.get(follows_ab)
                    if bucket is None:
                        bucket = buckets[follows_ab] = _bucket(follows_ab, granule)
                    bucket.extend([(i, j) for j in range(tail, n_a)])
            continue

        column_b = hlh1.column_of(event_b, granule)
        n_b = len(column_b.starts)
        if n_b == 0:
            continue
        starts_b = column_b.starts
        ends_b = column_b.ends
        head = 0
        tail = 0
        for i in range(n_a):
            start_i = starts_a[i]
            end_i = ends_a[i]
            # b's wholly before a (bulk b -> a Follows): ends_b[j] + eps
            # + 1 <= start_i.  Monotone in i since both sides ascend.
            while head < n_b and ends_b[head] + epsilon < start_i:
                head += 1
            # b's wholly after a (bulk a -> b Follows).
            threshold = end_i + epsilon + 1
            if tail < head:
                tail = head
            while tail < n_b and starts_b[tail] < threshold:
                tail += 1
            if track:
                n_near += tail - head
                n_bulk += head + (n_b - tail)
            if head:
                bucket = buckets.get(follows_ba)
                if bucket is None:
                    bucket = buckets[follows_ba] = _bucket(follows_ba, granule)
                bucket.extend([(j, i) for j in range(head)])
            for j in range(head, tail):
                start_j = starts_b[j]
                end_j = ends_b[j]
                if start_j != start_i:
                    a_first = start_i < start_j
                elif end_j != end_i:
                    a_first = end_i > end_j  # longer-first on start ties
                else:
                    a_first = event_a <= event_b
                if a_first:
                    s_1, e_1, s_2, e_2 = start_i, end_i, start_j, end_j
                else:
                    s_1, e_1, s_2, e_2 = start_j, end_j, start_i, end_i
                if s_1 <= s_2 and e_2 <= e_1 + epsilon:
                    rel = CONTAINS
                elif s_2 >= e_1 + 1 - epsilon:
                    rel = FOLLOWS
                elif (
                    s_1 < s_2
                    and e_1 + epsilon < e_2
                    and e_1 + 1 - s_2 >= min_overlap - epsilon
                ):
                    rel = OVERLAPS
                else:
                    continue
                key = (rel, event_a, event_b) if a_first else (rel, event_b, event_a)
                bucket = buckets.get(key)
                if bucket is None:
                    bucket = buckets[key] = _bucket(key, granule)
                bucket.append((i, j) if a_first else (j, i))
            if tail < n_b:
                bucket = buckets.get(follows_ab)
                if bucket is None:
                    bucket = buckets[follows_ab] = _bucket(follows_ab, granule)
                bucket.extend([(i, j) for j in range(tail, n_b)])
    if track and (n_bulk or n_near):
        metrics.inc("kernel.pairs.bulk", n_bulk)
        metrics.inc("kernel.pairs.near_classified", n_near)


def mine_pair_task(task: tuple[str, str]) -> GroupOutcome:
    """Mine one candidate 2-event group (step 2.2, k = 2).

    Pure function of ``task`` and the installed :class:`LevelContext`:
    intersects the two event supports, applies the candidate gate, and
    enumerates every related instance pair per common granule.
    """
    context: LevelContext = get_task_context()
    event_a, event_b = task
    hlh1 = context.hlh1
    params = context.params
    track = metrics.metrics_enabled()
    support = hlh1.support_of(event_a) & hlh1.support_of(event_b)
    if track:
        metrics.inc("mine.groups.pair")
        metrics.inc("mine.support.intersections")
    if context.apriori and not is_candidate(len(support), params):
        metrics.inc("mine.groups.gate_rejected")
        return GroupOutcome((event_a, event_b), None, {}, {})
    pattern_support: dict[TemporalPattern, list[int]] = {}
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
    collect = kernel_functions(context.kernel)[0]
    collect(
        hlh1, event_a, event_b, support, params.relation,
        pattern_support, pattern_assignments,
    )
    if track:
        # LazyAssignments reports its length without materializing, so
        # this total is O(#buckets), not O(#pairs).
        metrics.inc(
            "mine.pairs.recorded",
            sum(
                len(bucket)
                for by_granule in pattern_assignments.values()
                for bucket in by_granule.values()
            ),
        )
    return GroupOutcome((event_a, event_b), support, pattern_support, pattern_assignments)


def mine_extension_task(task: tuple[tuple[str, ...], str]) -> GroupOutcome:
    """Mine one candidate k-event group (step 2.2, k >= 3).

    Pure function of ``task`` and the installed :class:`LevelContext`:
    intersects the parent group's support with the new event's, applies
    the candidate gate, and extends the parent's pattern assignments.
    """
    context: LevelContext = get_task_context()
    group_prev, event = task
    entry_prev = context.previous.ehk[group_prev]
    group = tuple(sorted(group_prev + (event,)))
    track = metrics.metrics_enabled()
    support = entry_prev.support & context.hlh1.support_of(event)
    if track:
        metrics.inc("mine.groups.extension")
        metrics.inc("mine.support.intersections")
    if context.apriori and not is_candidate(len(support), context.params):
        metrics.inc("mine.groups.gate_rejected")
        return GroupOutcome(group, None, {}, {})
    extend = kernel_functions(context.kernel)[1]
    pattern_support, pattern_assignments = extend(
        context.hlh1,
        context.previous,
        entry_prev,
        event,
        context.candidate_triples,
        context.params,
        context.apriori,
    )
    if track:
        metrics.inc(
            "mine.extensions.recorded",
            sum(
                len(bucket)
                for by_granule in pattern_assignments.values()
                for bucket in by_granule.values()
            ),
        )
    return GroupOutcome(group, support, pattern_support, pattern_assignments)


def _verdict_row(
    hlh1: HLH1,
    granule: int,
    existing_event: str,
    existing_index: int,
    event: str,
    new_column,
    epsilon: int,
    min_overlap: int,
    allowed_triples,
) -> list:
    """Oriented relation verdicts of one existing instance against the
    whole new-event column, as a list indexed by new-instance position.

    Each entry is ``(existing_first, triple)`` or :data:`_NO_RELATION`
    (no relation holds, the triple fails the Iterative Check when
    ``allowed_triples`` is given, or the "pair" is the existing instance
    itself).  The new column is start-sorted, so the row is mostly two
    bulk Follows fills found by bisection; only the near window around
    the existing instance's interval is classified element-wise.
    """
    new_starts = new_column.starts
    new_ends = new_column.ends
    n_new = len(new_starts)
    existing_column = hlh1.column_of(existing_event, granule)
    s_e = existing_column.starts[existing_index]
    e_e = existing_column.ends[existing_index]
    # New instances ending epsilon+1 before the existing start: pure
    # new -> existing Follows (Contains cannot fire).
    head = bisect_right(new_ends, s_e - epsilon - 1)
    # New instances starting epsilon+1 after the existing end: pure
    # existing -> new Follows.
    tail = bisect_left(new_starts, e_e + epsilon + 1)
    if tail < head:  # pragma: no cover - impossible on sorted columns
        tail = head
    before = (False, intern_triple(FOLLOWS, event, existing_event))
    after = (True, intern_triple(FOLLOWS, existing_event, event))
    if allowed_triples is not None:
        if before[1] not in allowed_triples:
            before = _NO_RELATION
        if after[1] not in allowed_triples:
            after = _NO_RELATION
    row: list = [before] * head if head else []
    for j in range(head, tail):
        s_n = new_starts[j]
        e_n = new_ends[j]
        if s_e != s_n:
            existing_first = s_e < s_n
        elif e_e != e_n:
            existing_first = e_e > e_n
        else:
            existing_first = existing_event <= event
        if existing_first:
            s_1, e_1, s_2, e_2 = s_e, e_e, s_n, e_n
        else:
            s_1, e_1, s_2, e_2 = s_n, e_n, s_e, e_e
        if s_1 <= s_2 and e_2 <= e_1 + epsilon:
            rel = CONTAINS
        elif s_2 >= e_1 + 1 - epsilon:
            rel = FOLLOWS
        elif (
            s_1 < s_2
            and e_1 + epsilon < e_2
            and e_1 + 1 - s_2 >= min_overlap - epsilon
        ):
            rel = OVERLAPS
        else:
            row.append(_NO_RELATION)
            continue
        if existing_first:
            info = (True, intern_triple(rel, existing_event, event))
        else:
            info = (False, intern_triple(rel, event, existing_event))
        if allowed_triples is not None and info[1] not in allowed_triples:
            info = _NO_RELATION
        row.append(info)
    if tail < n_new:
        row.extend([after] * (n_new - tail))
    if existing_event == event and existing_index < n_new:
        # The existing instance is itself a column entry of the new
        # event: pairing it with itself never extends an assignment.
        row[existing_index] = _NO_RELATION
    return row


def extend_group_patterns(
    hlh1: HLH1,
    previous: HLHk,
    entry_prev,
    event: str,
    candidate_triples,
    params: MiningParams,
    check_candidates: bool,
    parent_patterns=None,
    granule_filter=None,
) -> tuple[
    dict[TemporalPattern, list[int]],
    dict[TemporalPattern, dict[int, list[Assignment]]],
]:
    """Extend every candidate pattern of one parent group with ``event``.

    This is the Iterative Check of Sec. IV-D 4.2.2: each new relation
    triple between an existing event and the new event must already be
    a candidate 2-event pattern, otherwise the extension is discarded.

    ``parent_patterns`` restricts the extension to a subset of the parent
    group's candidate patterns and ``granule_filter`` to a subset of the
    granule positions -- the hooks the streaming miner uses to extend only
    newly incorporated parent patterns / only the tail granules of an
    advance.  The batch miner leaves both ``None`` (all patterns, all
    granules).

    Parent assignments arrive -- and extended assignments leave -- in the
    compact column-index encoding of :mod:`repro.core.instance_index`:
    ``assignment[i]`` indexes the instance of ``pattern.events[i]`` in
    its ``(event, granule)`` column.  For every distinct existing
    instance the kernel precomputes one *verdict row* against the whole
    new-event column (:func:`_verdict_row`: bulk Follows prefix/suffix
    via bisection, inline classification for the near window, Iterative
    Check folded in, triples flyweight-interned), cached per granule
    under the index key ``(existing event, existing index)``.  The
    innermost loop is then a list index per (assignment slot, new
    instance); each distinct extended pattern becomes one interned
    :class:`TemporalPattern` at the end.
    """
    relation = params.relation
    epsilon = relation.epsilon
    min_overlap = relation.min_overlap
    allowed_triples = candidate_triples if check_candidates else None
    if parent_patterns is None:
        parent_patterns = entry_prev.patterns
    # Keyed by (events, triples) plain tuples in the hot loop; converted
    # to TemporalPattern objects once per unique pattern at the end.
    accumulator: dict[tuple, dict[int, set[Assignment]]] = {}
    # Per-granule cache of verdict rows: each existing instance is swept
    # against the new-event column exactly once even though it appears
    # in many parent assignments (of every parent pattern).
    row_cache: dict[int, dict[tuple[str, int], list]] = {}
    event_support = hlh1.support_of(event)
    for pattern_prev in parent_patterns:
        prev_events = pattern_prev.events
        prev_triples = pattern_prev.triples
        k = len(prev_events) + 1
        n_slots = k - 1
        # Shape cache: an accepted extension's (events, triples) identity
        # depends only on (position, partner triples), not on which
        # assignment realized it -- so the tuple splices and the
        # accumulator probe run once per distinct shape per parent
        # pattern.  Entries are [per_granule dict, granule tag, bucket].
        shape_cache: dict[tuple, list] = {}
        common = previous.support_of(pattern_prev) & event_support
        if granule_filter is not None:
            common = common & granule_filter
        for granule in common:
            new_column = hlh1.column_of(event, granule)
            n_new = len(new_column.starts)
            if n_new == 0:
                continue
            cache = row_cache.get(granule)
            if cache is None:
                cache = row_cache[granule] = {}
            for assignment in previous.assignments_of(pattern_prev, granule):
                rows = []
                for slot in range(n_slots):
                    row_key = (prev_events[slot], assignment[slot])
                    row = cache.get(row_key)
                    if row is None:
                        row = cache[row_key] = _verdict_row(
                            hlh1,
                            granule,
                            row_key[0],
                            row_key[1],
                            event,
                            new_column,
                            epsilon,
                            min_overlap,
                            allowed_triples,
                        )
                    rows.append(row)
                for new_index in range(n_new):
                    position = 0
                    partner: list[Triple] = []
                    valid = True
                    for slot in range(n_slots):
                        info = rows[slot][new_index]
                        if info is _NO_RELATION:
                            valid = False
                            break
                        if info[0]:
                            position += 1
                        partner.append(info[1])
                    if not valid:
                        continue
                    shape_key = (position, *partner)
                    entry = shape_cache.get(shape_key)
                    if entry is None:
                        events = (
                            prev_events[:position]
                            + (event,)
                            + prev_events[position:]
                        )
                        triples = splice_triples(prev_triples, partner, position, k)
                        # The same assignment can be reached through two
                        # parent patterns when the new pattern embeds the
                        # parent group's events in more than one way, so
                        # the per-granule store is shared per identity
                        # and deduplicates as a set.
                        per_granule = accumulator.setdefault((events, triples), {})
                        entry = shape_cache[shape_key] = [per_granule, -1, None]
                    if entry[1] != granule:
                        per_granule = entry[0]
                        bucket = per_granule.get(granule)
                        if bucket is None:
                            bucket = per_granule[granule] = set()
                        entry[1] = granule
                        entry[2] = bucket
                    entry[2].add(
                        assignment[:position]
                        + (new_index,)
                        + assignment[position:]
                    )
    pattern_support: dict[TemporalPattern, list[int]] = {}
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
    for (events, triples), per_granule in accumulator.items():
        pattern = intern_pattern(events, triples)
        pattern_support[pattern] = sorted(per_granule)
        pattern_assignments[pattern] = {
            granule: sorted(assignments)
            for granule, assignments in per_granule.items()
        }
    return pattern_support, pattern_assignments


#: Kernel name -> (pair kernel, extension kernel).  See :func:`kernel_functions`.
_KERNEL_FUNCTIONS = {
    KERNEL_ARRAY: (array_collect_pair_patterns, array_extend_group_patterns),
    KERNEL_SWEEP: (collect_pair_patterns, extend_group_patterns),
    KERNEL_REFERENCE: (
        reference_collect_pair_patterns,
        reference_extend_group_patterns,
    ),
}


# ---------------------------------------------------------------------------
# The miner
# ---------------------------------------------------------------------------


@dataclass
class ESTPM:
    """The exact seasonal temporal pattern miner.

    Parameters
    ----------
    dseq:
        The temporal sequence database to mine.
    params:
        The four seasonal thresholds plus relation settings.
    pruning:
        Which pruning techniques to apply (default: both).
    series_filter:
        If set, only events of these series are mined (A-STPM hook).
    pair_filter:
        If set, a 2-event group across two *different* series is only mined
        when the (unordered) series pair is in this set (A-STPM hook);
        same-series groups are always mined.
    event_filter:
        If set, only these event keys are mined (the event-level pruning
        extension of A-STPM).
    support_backend:
        Physical support-set representation: ``"bitset"`` (big-int bitsets,
        the default) or ``"list"`` (classical sorted lists).  ``None``
        resolves to the process-wide default.
    executor:
        Execution backend for the per-group work: ``"serial"``,
        ``"parallel"``, a :class:`~repro.core.executor.MiningExecutor`
        instance, or ``None`` for the process-wide default.  All backends
        return identical results.
    n_workers:
        Worker processes when ``executor="parallel"`` (default: all cores).
    kernel:
        Step-2.2 kernel implementation: ``"array"`` (the vectorized
        array engine -- numpy when available, pure-Python machine-word
        fallback otherwise), ``"sweep"`` (the columnar tuple sweep
        join), or ``"reference"`` (the pre-index object-at-a-time
        loops, kept for parity testing and benchmarking).  ``None``
        resolves to the process-wide default
        (:func:`~repro.core.instance_index.default_kernel`, normally
        ``"array"``).  All kernels produce equivalent results.
    strict:
        ``True`` (default): a group task that failed all its retry
        attempts aborts the run with :class:`MiningError` -- current
        exact-mining semantics.  ``False``: quarantined tasks are
        collected into ``MiningResult.failures`` and the run returns a
        knowingly partial result (``results_equivalent`` treats it as
        inequivalent to everything).
    checkpoint_path:
        If set, completed step-2.2 group outcomes are checkpointed to
        this file (atomic, versioned; see
        :class:`~repro.io.job_checkpoint.JobCheckpoint`) and a rerun
        pointed at the same path resumes, skipping the finished groups
        (``freqstpfts run --resume``).  The checkpoint is fingerprinted
        against the job's parameters and dataset shape, so it cannot be
        replayed into a different job.
    """

    dseq: TemporalSequenceDatabase
    params: MiningParams
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    series_filter: set[str] | None = None
    pair_filter: set[frozenset[str]] | None = None
    event_filter: set[str] | None = None
    support_backend: str | None = None
    executor: MiningExecutor | str | None = None
    n_workers: int | None = None
    kernel: str | None = None
    strict: bool = True
    checkpoint_path: str | None = None

    def mine(self) -> MiningResult:
        """Run the full mining process and return all frequent seasonal
        patterns of length 1..max_pattern_length.

        One executor serves every HLH level of the job: with a pool-backed
        backend the workers spawned for level 2 are reused by levels 3..k.
        A backend resolved here from a *name* is closed when the job
        finishes; a caller-provided instance keeps its pool alive for the
        caller's next job (see :func:`~repro.core.executor.executor_scope`).
        """
        started = time.perf_counter()
        backend = validate_backend(self.support_backend or default_backend())
        kernel = validate_kernel(self.kernel or default_kernel())
        stats = MiningStats(n_granules=len(self.dseq))
        patterns: list[SeasonalPattern] = []
        failures: list[FailedTask] = []
        checkpoint = self._open_checkpoint()

        with span(
            "estpm/mine", granules=len(self.dseq), kernel=kernel, backend=backend
        ) as mine_span, executor_scope(self.executor, self.n_workers) as runner:
            with span("estpm/step2.1") as step21:
                hlh1 = self._mine_single_events(backend, patterns, stats)
                step21.set(
                    candidates=len(hlh1),
                    frequent=stats.n_frequent.get(1, 0),
                )
            levels: dict[int, HLHk] = {}
            if self.params.max_pattern_length >= 2:
                with span("estpm/step2.2/pairs", k=2) as step22:
                    hlh2 = self._mine_two_event_patterns(
                        hlh1, runner, backend, kernel, patterns, stats,
                        checkpoint, failures,
                    )
                    step22.set(
                        groups=len(hlh2.groups), patterns=len(hlh2.phk)
                    )
                levels[2] = hlh2
                candidate_triples = frozenset(p.triples[0] for p in hlh2.phk)
                previous = hlh2
                k = 3
                while k <= self.params.max_pattern_length and previous.phk:
                    with span("estpm/step2.2/extend", k=k) as extend_span:
                        current = self._mine_k_event_patterns(
                            hlh1, previous, candidate_triples, k, runner,
                            backend, kernel, patterns, stats,
                            checkpoint, failures,
                        )
                        extend_span.set(
                            groups=len(current.groups),
                            patterns=len(current.phk),
                        )
                    levels[k] = current
                    previous = current
                    k += 1
            mine_span.set(patterns=len(patterns), failures=len(failures))

        if checkpoint is not None:
            checkpoint.flush()
        stats.mining_seconds = time.perf_counter() - started
        if failures and self.strict:
            raise MiningError(
                f"{len(failures)} group task(s) failed after retries: "
                + "; ".join(f.describe() for f in failures[:5])
                + ("; ..." if len(failures) > 5 else "")
                + " (run with strict=False to keep the partial result)"
            )
        return MiningResult(patterns=patterns, stats=stats, failures=failures)

    def _open_checkpoint(self):
        """The job-progress checkpoint, or ``None`` when not configured.

        The fingerprint binds the checkpoint to this exact job: the
        mining parameters and the dataset shape (kernel and backend are
        deliberately excluded -- all kernels/backends produce equivalent
        outcomes, so a resume may switch them).
        """
        if self.checkpoint_path is None:
            return None
        # Imported lazily: repro.io's package init reaches (via the
        # archive readers) back into this module.
        from repro.io.job_checkpoint import JobCheckpoint

        return JobCheckpoint(
            self.checkpoint_path,
            {
                "job": "estpm",
                "params": repr(self.params),
                "granules": len(self.dseq),
            },
        )

    def _dispatch(
        self,
        runner: MiningExecutor,
        fn,
        tasks: list,
        context: "LevelContext",
        prefix: str,
        checkpoint,
        failures: list[FailedTask],
    ):
        """Run a level's tasks, yielding outcomes in task order.

        Wraps ``runner.map_tasks`` with the two resilience concerns the
        miner owns: *resume* (tasks whose key is already in the job
        checkpoint are skipped -- their recorded outcome is yielded in
        place, counted in ``resume.tasks_skipped``) and *quarantine*
        (a :class:`FailedTask` outcome is collected into ``failures``
        instead of being yielded, leaving that group's patterns out of
        the result).  Completed outcomes are checkpointed as they
        stream back, so progress is durable every ``flush_every`` tasks.
        """
        keys = [f"{prefix}:{task_key_of(task)}" for task in tasks]
        if checkpoint is None:
            pending = list(range(len(tasks)))
        else:
            pending = [i for i, key in enumerate(keys) if key not in checkpoint]
            skipped = len(tasks) - len(pending)
            if skipped:
                metrics.inc("resume.tasks_skipped", skipped)
        if pending:
            fresh = iter(
                runner.map_tasks(fn, [tasks[i] for i in pending], context)
            )
        else:
            fresh = iter(())
        pending_set = set(pending)
        for index in range(len(tasks)):
            if index not in pending_set:
                yield checkpoint.get(keys[index])
                continue
            outcome = next(fresh)
            if isinstance(outcome, FailedTask):
                failures.append(outcome)
                continue
            if checkpoint is not None:
                checkpoint.record(keys[index], outcome)
            yield outcome

    # ------------------------------------------------------------------
    # Step 2.1: single events
    # ------------------------------------------------------------------

    def _mine_single_events(
        self, backend: str, patterns: list[SeasonalPattern], stats: MiningStats
    ) -> HLH1:
        hlh1 = HLH1()
        params = self.params
        # Per-granule instance tables exist solely for step 2.2's pair /
        # extension enumeration; a single-event run (maxSeason scan, the
        # multigrain event-seasonality workload) never reads them.
        need_instances = params.max_pattern_length >= 2
        with span("estpm/step2.1/hlh1_scan") as scan_span:
            event_supports = sorted(self.dseq.event_support(backend).items())
            scan_span.set(events=len(event_supports))
        candidates: list[tuple[str, SupportLike]] = []
        for event, support in event_supports:
            if self.series_filter is not None and series_of(event) not in self.series_filter:
                stats.n_events_pruned += 1
                continue
            if self.event_filter is not None and event not in self.event_filter:
                stats.n_events_pruned += 1
                continue
            stats.n_events_scanned += 1
            if self.pruning.apriori and not is_candidate(len(support), params):
                continue
            candidates.append((event, support))
        # Batched frequency gate: every candidate's packed bit positions
        # run through the chain counter in one pass, early-exiting per
        # event at min_season; the full SeasonView is materialized only
        # for the frequent survivors below.
        with span("estpm/step2.1/season_gate", events=len(candidates)):
            season_counts = count_seasons_batch(
                [support for _, support in candidates],
                params,
                stop_at=params.min_season,
            )
        for (event, support), n_seasons in zip(candidates, season_counts):
            instances_by_granule: dict[int, list] = {}
            columns = None
            if need_instances:
                # The columnar front end already holds per-granule instance
                # tables; hand them straight to HLH1 instead of re-walking
                # the rows (scalar-built databases fall back to row walks).
                columns = self.dseq.prebuilt_columns(event)
                if columns is not None:
                    instances_by_granule = {
                        granule: list(column.instances)
                        for granule, column in columns.items()
                    }
                else:
                    instances_by_granule = {
                        position: self.dseq.instances_at(position, event)
                        for position in support
                    }
            hlh1.add_event(event, support, instances_by_granule, columns=columns)
            if n_seasons >= params.min_season:
                patterns.append(
                    SeasonalPattern(
                        single_event_pattern(event), compute_seasons(support, params)
                    )
                )
        stats.n_candidate_events = len(hlh1)
        stats.bump(stats.n_frequent, 1, sum(1 for p in patterns if p.size == 1))
        return hlh1

    # ------------------------------------------------------------------
    # Step 2.2, k = 2
    # ------------------------------------------------------------------

    def _pair_allowed(self, event_a: str, event_b: str) -> bool:
        if self.pair_filter is None:
            return True
        series_a, series_b = series_of(event_a), series_of(event_b)
        if series_a == series_b:
            return True
        return frozenset((series_a, series_b)) in self.pair_filter

    def _mine_two_event_patterns(
        self,
        hlh1: HLH1,
        runner: MiningExecutor,
        backend: str,
        kernel: str,
        patterns: list[SeasonalPattern],
        stats: MiningStats,
        checkpoint=None,
        failures: list[FailedTask] | None = None,
    ) -> HLHk:
        hlh2 = HLHk(k=2)
        f1 = sorted(hlh1.candidates)
        tasks: list[tuple[str, str]] = []
        for event_a, event_b in combinations_with_replacement(f1, 2):
            if not self._pair_allowed(event_a, event_b):
                continue
            stats.bump(stats.n_groups_generated, 2)
            tasks.append((event_a, event_b))
        context = LevelContext(
            params=self.params, apriori=self.pruning.apriori, hlh1=hlh1,
            kernel=kernel,
        )
        outcomes = self._dispatch(
            runner, mine_pair_task, tasks, context, "k2", checkpoint,
            failures if failures is not None else [],
        )
        for outcome in outcomes:
            if outcome.support is None:
                continue
            hlh2.add_group(outcome.group, outcome.support)
            stats.bump(stats.n_candidate_groups, 2)
            self._register_patterns(
                hlh2, backend, outcome.pattern_support,
                outcome.pattern_assignments, patterns, stats,
            )
        return hlh2

    # ------------------------------------------------------------------
    # Step 2.2, k >= 3
    # ------------------------------------------------------------------

    def _mine_k_event_patterns(
        self,
        hlh1: HLH1,
        previous: HLHk,
        candidate_triples: frozenset[Triple],
        k: int,
        runner: MiningExecutor,
        backend: str,
        kernel: str,
        patterns: list[SeasonalPattern],
        stats: MiningStats,
        checkpoint=None,
        failures: list[FailedTask] | None = None,
    ) -> HLHk:
        hlhk = HLHk(k=k)
        if self.pruning.transitivity:
            filtered_f1 = sorted(previous.events_in_patterns())
        else:
            filtered_f1 = sorted(hlh1.candidates)
        seen_groups: set[tuple[str, ...]] = set()
        tasks: list[tuple[tuple[str, ...], str]] = []
        for group_prev in previous.groups:
            if not previous.ehk[group_prev].patterns:
                continue
            for event in filtered_f1:
                group = tuple(sorted(group_prev + (event,)))
                if group in seen_groups:
                    continue
                seen_groups.add(group)
                stats.bump(stats.n_groups_generated, k)
                tasks.append((group_prev, event))
        context = LevelContext(
            params=self.params,
            apriori=self.pruning.apriori,
            hlh1=hlh1,
            previous=previous,
            candidate_triples=candidate_triples,
            kernel=kernel,
        )
        outcomes = self._dispatch(
            runner, mine_extension_task, tasks, context, f"k{k}", checkpoint,
            failures if failures is not None else [],
        )
        for outcome in outcomes:
            if outcome.support is None:
                continue
            hlhk.add_group(outcome.group, outcome.support)
            stats.bump(stats.n_candidate_groups, k)
            self._register_patterns(
                hlhk, backend, outcome.pattern_support,
                outcome.pattern_assignments, patterns, stats,
            )
        return hlhk

    # ------------------------------------------------------------------
    # Shared registration of candidate + frequent patterns
    # ------------------------------------------------------------------

    def _register_patterns(
        self,
        hlhk: HLHk,
        backend: str,
        pattern_support: dict[TemporalPattern, list[int]],
        pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]],
        patterns: list[SeasonalPattern],
        stats: MiningStats,
    ) -> None:
        params = self.params
        for pattern, support in pattern_support.items():
            if self.pruning.apriori and not is_candidate(len(support), params):
                metrics.inc("mine.patterns.gate_rejected")
                continue
            metrics.inc("mine.patterns.candidates")
            hlhk.add_pattern(
                pattern,
                make_support_set(support, backend),
                pattern_assignments[pattern],
            )
            stats.bump(stats.n_candidate_patterns, hlhk.k)
            # Gate with the early-exit chain counter (no view allocation
            # for the infrequent majority of candidates).
            if is_frequent_seasonal(support, params):
                patterns.append(
                    SeasonalPattern(pattern, compute_seasons(support, params))
                )
                stats.bump(stats.n_frequent, hlhk.k)
                metrics.inc("mine.patterns.frequent")


def mine_seasonal_patterns(
    dseq: TemporalSequenceDatabase,
    params: MiningParams,
    pruning: PruningConfig | None = None,
) -> MiningResult:
    """Convenience wrapper: run E-STPM with the given (or full) pruning."""
    if len(dseq) == 0:
        raise MiningError("cannot mine an empty DSEQ")
    miner = ESTPM(dseq, params, pruning or PruningConfig.all())
    return miner.mine()
