"""E-STPM: the exact Seasonal Temporal Pattern Mining algorithm (Alg. 1).

The miner follows the paper's two mining steps on a temporal sequence
database ``DSEQ``:

* **Step 2.1** -- mine frequent seasonal single events: one scan of DSEQ
  computes every event's support set; events passing the ``maxSeason``
  candidate gate populate ``HLH1``; candidates passing the full seasonal
  check (maxPeriod / minDensity / distInterval / minSeason) are frequent.
* **Step 2.2** -- mine frequent seasonal k-event patterns, k >= 2:
  candidate k-event groups come from the Cartesian product
  ``F_{k-1} x FilteredF1`` with support-set intersection; patterns are
  grown by extending the (k-1)-pattern assignments stored in ``GH_{k-1}``
  with instances of the new event, verifying each new relation triple
  against the candidate 2-event patterns (the Iterative Check of
  Sec. IV-D 4.2.2).

Pruning is controlled by :class:`~repro.core.prune.PruningConfig`:
``apriori`` applies the maxSeason candidate gates (Lemmas 1-2);
``transitivity`` restricts F1 to events present in HLH_{k-1} patterns
(Lemmas 3-4).  Both are lossless.

Engine architecture
-------------------
Support sets live behind :class:`~repro.core.supportset.SupportSet`
(big-int bitsets by default, classical sorted lists for parity), so every
group intersection is a C-level ``&`` and every maxSeason gate a
``bit_count()``.  The per-group work of step 2.2 -- intersect supports,
enumerate instance pairs, grow assignments -- is expressed as pure,
picklable *group tasks* (:func:`mine_pair_task` / :func:`mine_extension_task`
against a read-only :class:`LevelContext`) dispatched through a
:class:`~repro.core.executor.MiningExecutor`.  The serial executor
reproduces the classical single-threaded miner; the parallel executor fans
the tasks over a process pool.  Outcomes are consumed in task order, so
the :class:`~repro.core.results.MiningResult` is identical across
backends.

The optional ``series_filter`` / ``pair_filter`` hooks implement A-STPM's
search-space reduction (only mine events of correlated series and 2-event
groups of correlated series pairs); plain E-STPM leaves them ``None``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations, combinations_with_replacement, product

from repro.core.config import MiningParams
from repro.core.executor import MiningExecutor, executor_scope, get_task_context
from repro.core.hlh import HLH1, Assignment, HLHk
from repro.core.pattern import (
    TemporalPattern,
    Triple,
    oriented_triple,
    single_event_pattern,
    splice_triples,
)
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import compute_seasons, is_candidate
from repro.core.supportset import (
    SupportSet,
    default_backend,
    make_support_set,
    validate_backend,
)
from repro.events.event import EventInstance
from repro.events.relations import relation_of_pair
from repro.exceptions import MiningError
from repro.transform.sequence_db import TemporalSequenceDatabase


def series_of(event: str) -> str:
    """The series name of an event key ``series:symbol``."""
    return event.rsplit(":", 1)[0]


# ---------------------------------------------------------------------------
# Group tasks: the pure, picklable per-group unit of work
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelContext:
    """Read-only state shared by every group task of one HLH level.

    Shipped once per worker process (pool initializer) rather than once
    per task; tasks themselves are tiny key tuples into these tables.
    """

    params: MiningParams
    apriori: bool
    hlh1: HLH1
    previous: HLHk | None = None
    candidate_triples: frozenset[Triple] | None = None


@dataclass(frozen=True)
class GroupOutcome:
    """What one group task produced.

    ``support is None`` means the group failed the maxSeason candidate
    gate and contributes nothing to the level.
    """

    group: tuple[str, ...]
    support: SupportSet | None
    pattern_support: dict[TemporalPattern, list[int]]
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]]


def collect_pair_patterns(
    hlh1: HLH1,
    event_a: str,
    event_b: str,
    granules,
    relation,
    pattern_support: dict[TemporalPattern, list[int]],
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]],
) -> None:
    """Enumerate the related instance pairs of one event pair per granule.

    The per-granule inner loop of step 2.2 (k = 2), shared by the batch
    miner (which walks the full group support) and the streaming miner
    (which walks only the tail granules of an advance).  ``granules`` must
    be ascending; results accumulate into the two dictionaries in place.
    """
    for granule in granules:
        instances_a = hlh1.instances_of(event_a, granule)
        if event_a == event_b:
            pairs = combinations(instances_a, 2)
        else:
            pairs = product(instances_a, hlh1.instances_of(event_b, granule))
        for a, b in pairs:
            located = relation_of_pair(a, b, relation)
            if located is None:
                continue
            rel, earlier, later = located
            pattern = TemporalPattern(
                (earlier.event, later.event),
                (Triple(rel, earlier.event, later.event),),
            )
            support_list = pattern_support.setdefault(pattern, [])
            if not support_list or support_list[-1] != granule:
                support_list.append(granule)
            pattern_assignments.setdefault(pattern, {}).setdefault(
                granule, []
            ).append((earlier, later))


def mine_pair_task(task: tuple[str, str]) -> GroupOutcome:
    """Mine one candidate 2-event group (step 2.2, k = 2).

    Pure function of ``task`` and the installed :class:`LevelContext`:
    intersects the two event supports, applies the candidate gate, and
    enumerates every related instance pair per common granule.
    """
    context: LevelContext = get_task_context()
    event_a, event_b = task
    hlh1 = context.hlh1
    params = context.params
    support = hlh1.support_of(event_a) & hlh1.support_of(event_b)
    if context.apriori and not is_candidate(len(support), params):
        return GroupOutcome((event_a, event_b), None, {}, {})
    pattern_support: dict[TemporalPattern, list[int]] = {}
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
    collect_pair_patterns(
        hlh1, event_a, event_b, support, params.relation,
        pattern_support, pattern_assignments,
    )
    return GroupOutcome((event_a, event_b), support, pattern_support, pattern_assignments)


def mine_extension_task(task: tuple[tuple[str, ...], str]) -> GroupOutcome:
    """Mine one candidate k-event group (step 2.2, k >= 3).

    Pure function of ``task`` and the installed :class:`LevelContext`:
    intersects the parent group's support with the new event's, applies
    the candidate gate, and extends the parent's pattern assignments.
    """
    context: LevelContext = get_task_context()
    group_prev, event = task
    entry_prev = context.previous.ehk[group_prev]
    group = tuple(sorted(group_prev + (event,)))
    support = entry_prev.support & context.hlh1.support_of(event)
    if context.apriori and not is_candidate(len(support), context.params):
        return GroupOutcome(group, None, {}, {})
    pattern_support, pattern_assignments = extend_group_patterns(
        context.hlh1,
        context.previous,
        entry_prev,
        event,
        context.candidate_triples,
        context.params,
        context.apriori,
    )
    return GroupOutcome(group, support, pattern_support, pattern_assignments)


def extend_group_patterns(
    hlh1: HLH1,
    previous: HLHk,
    entry_prev,
    event: str,
    candidate_triples,
    params: MiningParams,
    check_candidates: bool,
    parent_patterns=None,
    granule_filter=None,
) -> tuple[
    dict[TemporalPattern, list[int]],
    dict[TemporalPattern, dict[int, list[Assignment]]],
]:
    """Extend every candidate pattern of one parent group with ``event``.

    This is the Iterative Check of Sec. IV-D 4.2.2: each new relation
    triple between an existing event and the new event must already be
    a candidate 2-event pattern, otherwise the extension is discarded.

    ``parent_patterns`` restricts the extension to a subset of the parent
    group's candidate patterns and ``granule_filter`` to a subset of the
    granule positions -- the hooks the streaming miner uses to extend only
    newly incorporated parent patterns / only the tail granules of an
    advance.  The batch miner leaves both ``None`` (all patterns, all
    granules).
    """
    relation = params.relation
    if parent_patterns is None:
        parent_patterns = entry_prev.patterns
    # Keyed by (events, triples) plain tuples in the hot loop; converted
    # to TemporalPattern objects once per unique pattern at the end.
    accumulator: dict[tuple, dict[int, set[Assignment]]] = {}
    # Per-granule cache of oriented relation triples: each (existing
    # instance, new instance) pair is related exactly once even though
    # it appears in many parent assignments.
    pair_cache: dict[int, dict[tuple[EventInstance, EventInstance], tuple | None]] = {}
    event_support = hlh1.support_of(event)
    for pattern_prev in parent_patterns:
        prev_events = pattern_prev.events
        prev_triples = pattern_prev.triples
        k = len(prev_events) + 1
        common = previous.support_of(pattern_prev) & event_support
        if granule_filter is not None:
            common = common & granule_filter
        for granule in common:
            new_instances = hlh1.instances_of(event, granule)
            cache = pair_cache.setdefault(granule, {})
            for assignment in previous.assignments_of(pattern_prev, granule):
                for instance in new_instances:
                    if instance in assignment:
                        continue
                    position = 0
                    partner: list[Triple] = []
                    valid = True
                    for existing in assignment:
                        pair = (existing, instance)
                        info = cache.get(pair, False)
                        if info is False:
                            info = oriented_triple(existing, instance, relation)
                            cache[pair] = info
                        if info is None:
                            valid = False
                            break
                        existing_first, triple = info
                        if existing_first:
                            position += 1
                        if check_candidates and triple not in candidate_triples:
                            valid = False
                            break
                        partner.append(triple)
                    if not valid:
                        continue
                    events = (
                        prev_events[:position]
                        + (instance.event,)
                        + prev_events[position:]
                    )
                    triples = splice_triples(prev_triples, partner, position, k)
                    ordered = (
                        assignment[:position]
                        + (instance,)
                        + assignment[position:]
                    )
                    # The same assignment can be reached through two
                    # parent patterns when the new pattern embeds the
                    # parent group's events in more than one way, so
                    # deduplicate per granule.
                    per_granule = accumulator.setdefault((events, triples), {})
                    per_granule.setdefault(granule, set()).add(ordered)
    pattern_support: dict[TemporalPattern, list[int]] = {}
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
    for (events, triples), per_granule in accumulator.items():
        pattern = TemporalPattern(events, triples)
        pattern_support[pattern] = sorted(per_granule)
        pattern_assignments[pattern] = {
            granule: sorted(assignments)
            for granule, assignments in per_granule.items()
        }
    return pattern_support, pattern_assignments


# ---------------------------------------------------------------------------
# The miner
# ---------------------------------------------------------------------------


@dataclass
class ESTPM:
    """The exact seasonal temporal pattern miner.

    Parameters
    ----------
    dseq:
        The temporal sequence database to mine.
    params:
        The four seasonal thresholds plus relation settings.
    pruning:
        Which pruning techniques to apply (default: both).
    series_filter:
        If set, only events of these series are mined (A-STPM hook).
    pair_filter:
        If set, a 2-event group across two *different* series is only mined
        when the (unordered) series pair is in this set (A-STPM hook);
        same-series groups are always mined.
    event_filter:
        If set, only these event keys are mined (the event-level pruning
        extension of A-STPM).
    support_backend:
        Physical support-set representation: ``"bitset"`` (big-int bitsets,
        the default) or ``"list"`` (classical sorted lists).  ``None``
        resolves to the process-wide default.
    executor:
        Execution backend for the per-group work: ``"serial"``,
        ``"parallel"``, a :class:`~repro.core.executor.MiningExecutor`
        instance, or ``None`` for the process-wide default.  All backends
        return identical results.
    n_workers:
        Worker processes when ``executor="parallel"`` (default: all cores).
    """

    dseq: TemporalSequenceDatabase
    params: MiningParams
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    series_filter: set[str] | None = None
    pair_filter: set[frozenset[str]] | None = None
    event_filter: set[str] | None = None
    support_backend: str | None = None
    executor: MiningExecutor | str | None = None
    n_workers: int | None = None

    def mine(self) -> MiningResult:
        """Run the full mining process and return all frequent seasonal
        patterns of length 1..max_pattern_length.

        One executor serves every HLH level of the job: with a pool-backed
        backend the workers spawned for level 2 are reused by levels 3..k.
        A backend resolved here from a *name* is closed when the job
        finishes; a caller-provided instance keeps its pool alive for the
        caller's next job (see :func:`~repro.core.executor.executor_scope`).
        """
        started = time.perf_counter()
        backend = validate_backend(self.support_backend or default_backend())
        stats = MiningStats(n_granules=len(self.dseq))
        patterns: list[SeasonalPattern] = []

        with executor_scope(self.executor, self.n_workers) as runner:
            hlh1 = self._mine_single_events(backend, patterns, stats)
            levels: dict[int, HLHk] = {}
            if self.params.max_pattern_length >= 2:
                hlh2 = self._mine_two_event_patterns(
                    hlh1, runner, backend, patterns, stats
                )
                levels[2] = hlh2
                candidate_triples = frozenset(p.triples[0] for p in hlh2.phk)
                previous = hlh2
                k = 3
                while k <= self.params.max_pattern_length and previous.phk:
                    current = self._mine_k_event_patterns(
                        hlh1, previous, candidate_triples, k, runner, backend,
                        patterns, stats,
                    )
                    levels[k] = current
                    previous = current
                    k += 1

        stats.mining_seconds = time.perf_counter() - started
        return MiningResult(patterns=patterns, stats=stats)

    # ------------------------------------------------------------------
    # Step 2.1: single events
    # ------------------------------------------------------------------

    def _mine_single_events(
        self, backend: str, patterns: list[SeasonalPattern], stats: MiningStats
    ) -> HLH1:
        hlh1 = HLH1()
        params = self.params
        # Per-granule instance tables exist solely for step 2.2's pair /
        # extension enumeration; a single-event run (maxSeason scan, the
        # multigrain event-seasonality workload) never reads them.
        need_instances = params.max_pattern_length >= 2
        for event, support in sorted(self.dseq.event_support(backend).items()):
            if self.series_filter is not None and series_of(event) not in self.series_filter:
                stats.n_events_pruned += 1
                continue
            if self.event_filter is not None and event not in self.event_filter:
                stats.n_events_pruned += 1
                continue
            stats.n_events_scanned += 1
            if self.pruning.apriori and not is_candidate(len(support), params):
                continue
            instances_by_granule = {}
            if need_instances:
                instances_by_granule = {
                    position: self.dseq.instances_at(position, event)
                    for position in support
                }
            hlh1.add_event(event, support, instances_by_granule)
            view = compute_seasons(support, params)
            if view.n_seasons >= params.min_season:
                patterns.append(SeasonalPattern(single_event_pattern(event), view))
        stats.n_candidate_events = len(hlh1)
        stats.bump(stats.n_frequent, 1, sum(1 for p in patterns if p.size == 1))
        return hlh1

    # ------------------------------------------------------------------
    # Step 2.2, k = 2
    # ------------------------------------------------------------------

    def _pair_allowed(self, event_a: str, event_b: str) -> bool:
        if self.pair_filter is None:
            return True
        series_a, series_b = series_of(event_a), series_of(event_b)
        if series_a == series_b:
            return True
        return frozenset((series_a, series_b)) in self.pair_filter

    def _mine_two_event_patterns(
        self,
        hlh1: HLH1,
        runner: MiningExecutor,
        backend: str,
        patterns: list[SeasonalPattern],
        stats: MiningStats,
    ) -> HLHk:
        hlh2 = HLHk(k=2)
        f1 = sorted(hlh1.candidates)
        tasks: list[tuple[str, str]] = []
        for event_a, event_b in combinations_with_replacement(f1, 2):
            if not self._pair_allowed(event_a, event_b):
                continue
            stats.bump(stats.n_groups_generated, 2)
            tasks.append((event_a, event_b))
        context = LevelContext(
            params=self.params, apriori=self.pruning.apriori, hlh1=hlh1
        )
        for outcome in runner.map_tasks(mine_pair_task, tasks, context):
            if outcome.support is None:
                continue
            hlh2.add_group(outcome.group, outcome.support)
            stats.bump(stats.n_candidate_groups, 2)
            self._register_patterns(
                hlh2, backend, outcome.pattern_support,
                outcome.pattern_assignments, patterns, stats,
            )
        return hlh2

    # ------------------------------------------------------------------
    # Step 2.2, k >= 3
    # ------------------------------------------------------------------

    def _mine_k_event_patterns(
        self,
        hlh1: HLH1,
        previous: HLHk,
        candidate_triples: frozenset[Triple],
        k: int,
        runner: MiningExecutor,
        backend: str,
        patterns: list[SeasonalPattern],
        stats: MiningStats,
    ) -> HLHk:
        hlhk = HLHk(k=k)
        if self.pruning.transitivity:
            filtered_f1 = sorted(previous.events_in_patterns())
        else:
            filtered_f1 = sorted(hlh1.candidates)
        seen_groups: set[tuple[str, ...]] = set()
        tasks: list[tuple[tuple[str, ...], str]] = []
        for group_prev in previous.groups:
            if not previous.ehk[group_prev].patterns:
                continue
            for event in filtered_f1:
                group = tuple(sorted(group_prev + (event,)))
                if group in seen_groups:
                    continue
                seen_groups.add(group)
                stats.bump(stats.n_groups_generated, k)
                tasks.append((group_prev, event))
        context = LevelContext(
            params=self.params,
            apriori=self.pruning.apriori,
            hlh1=hlh1,
            previous=previous,
            candidate_triples=candidate_triples,
        )
        for outcome in runner.map_tasks(mine_extension_task, tasks, context):
            if outcome.support is None:
                continue
            hlhk.add_group(outcome.group, outcome.support)
            stats.bump(stats.n_candidate_groups, k)
            self._register_patterns(
                hlhk, backend, outcome.pattern_support,
                outcome.pattern_assignments, patterns, stats,
            )
        return hlhk

    # ------------------------------------------------------------------
    # Shared registration of candidate + frequent patterns
    # ------------------------------------------------------------------

    def _register_patterns(
        self,
        hlhk: HLHk,
        backend: str,
        pattern_support: dict[TemporalPattern, list[int]],
        pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]],
        patterns: list[SeasonalPattern],
        stats: MiningStats,
    ) -> None:
        params = self.params
        for pattern, support in pattern_support.items():
            if self.pruning.apriori and not is_candidate(len(support), params):
                continue
            hlhk.add_pattern(
                pattern,
                make_support_set(support, backend),
                pattern_assignments[pattern],
            )
            stats.bump(stats.n_candidate_patterns, hlhk.k)
            view = compute_seasons(support, params)
            if view.n_seasons >= params.min_season:
                patterns.append(SeasonalPattern(pattern, view))
                stats.bump(stats.n_frequent, hlhk.k)


def mine_seasonal_patterns(
    dseq: TemporalSequenceDatabase,
    params: MiningParams,
    pruning: PruningConfig | None = None,
) -> MiningResult:
    """Convenience wrapper: run E-STPM with the given (or full) pruning."""
    if len(dseq) == 0:
        raise MiningError("cannot mine an empty DSEQ")
    miner = ESTPM(dseq, params, pruning or PruningConfig.all())
    return miner.mine()
