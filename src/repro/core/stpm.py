"""E-STPM: the exact Seasonal Temporal Pattern Mining algorithm (Alg. 1).

The miner follows the paper's two mining steps on a temporal sequence
database ``DSEQ``:

* **Step 2.1** -- mine frequent seasonal single events: one scan of DSEQ
  computes every event's support set; events passing the ``maxSeason``
  candidate gate populate ``HLH1``; candidates passing the full seasonal
  check (maxPeriod / minDensity / distInterval / minSeason) are frequent.
* **Step 2.2** -- mine frequent seasonal k-event patterns, k >= 2:
  candidate k-event groups come from the Cartesian product
  ``F_{k-1} x FilteredF1`` with support-set intersection; patterns are
  grown by extending the (k-1)-pattern assignments stored in ``GH_{k-1}``
  with instances of the new event, verifying each new relation triple
  against the candidate 2-event patterns (the Iterative Check of
  Sec. IV-D 4.2.2).

Pruning is controlled by :class:`~repro.core.prune.PruningConfig`:
``apriori`` applies the maxSeason candidate gates (Lemmas 1-2);
``transitivity`` restricts F1 to events present in HLH_{k-1} patterns
(Lemmas 3-4).  Both are lossless.

The optional ``series_filter`` / ``pair_filter`` hooks implement A-STPM's
search-space reduction (only mine events of correlated series and 2-event
groups of correlated series pairs); plain E-STPM leaves them ``None``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations, combinations_with_replacement, product

from repro.core.config import MiningParams
from repro.core.hlh import HLH1, Assignment, HLHk
from repro.core.pattern import (
    TemporalPattern,
    Triple,
    oriented_triple,
    single_event_pattern,
    splice_triples,
)
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import compute_seasons, is_candidate
from repro.core.support import intersect_sorted
from repro.events.event import EventInstance
from repro.events.relations import relation_of_pair
from repro.exceptions import MiningError
from repro.transform.sequence_db import TemporalSequenceDatabase


def series_of(event: str) -> str:
    """The series name of an event key ``series:symbol``."""
    return event.rsplit(":", 1)[0]


@dataclass
class ESTPM:
    """The exact seasonal temporal pattern miner.

    Parameters
    ----------
    dseq:
        The temporal sequence database to mine.
    params:
        The four seasonal thresholds plus relation settings.
    pruning:
        Which pruning techniques to apply (default: both).
    series_filter:
        If set, only events of these series are mined (A-STPM hook).
    pair_filter:
        If set, a 2-event group across two *different* series is only mined
        when the (unordered) series pair is in this set (A-STPM hook);
        same-series groups are always mined.
    event_filter:
        If set, only these event keys are mined (the event-level pruning
        extension of A-STPM).
    """

    dseq: TemporalSequenceDatabase
    params: MiningParams
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    series_filter: set[str] | None = None
    pair_filter: set[frozenset[str]] | None = None
    event_filter: set[str] | None = None

    def mine(self) -> MiningResult:
        """Run the full mining process and return all frequent seasonal
        patterns of length 1..max_pattern_length."""
        started = time.perf_counter()
        stats = MiningStats(n_granules=len(self.dseq))
        patterns: list[SeasonalPattern] = []

        hlh1 = self._mine_single_events(patterns, stats)
        levels: dict[int, HLHk] = {}
        if self.params.max_pattern_length >= 2:
            hlh2 = self._mine_two_event_patterns(hlh1, patterns, stats)
            levels[2] = hlh2
            candidate_triples = {p.triples[0] for p in hlh2.phk}
            previous = hlh2
            k = 3
            while k <= self.params.max_pattern_length and previous.phk:
                current = self._mine_k_event_patterns(
                    hlh1, previous, candidate_triples, k, patterns, stats
                )
                levels[k] = current
                previous = current
                k += 1

        stats.mining_seconds = time.perf_counter() - started
        return MiningResult(patterns=patterns, stats=stats)

    # ------------------------------------------------------------------
    # Step 2.1: single events
    # ------------------------------------------------------------------

    def _mine_single_events(
        self, patterns: list[SeasonalPattern], stats: MiningStats
    ) -> HLH1:
        hlh1 = HLH1()
        params = self.params
        for event, support in sorted(self.dseq.event_support().items()):
            if self.series_filter is not None and series_of(event) not in self.series_filter:
                stats.n_events_pruned += 1
                continue
            if self.event_filter is not None and event not in self.event_filter:
                stats.n_events_pruned += 1
                continue
            stats.n_events_scanned += 1
            if self.pruning.apriori and not is_candidate(len(support), params):
                continue
            instances_by_granule = {
                position: self.dseq.instances_at(position, event)
                for position in support
            }
            hlh1.add_event(event, support, instances_by_granule)
            view = compute_seasons(support, params)
            if view.n_seasons >= params.min_season:
                patterns.append(SeasonalPattern(single_event_pattern(event), view))
        stats.n_candidate_events = len(hlh1)
        stats.bump(stats.n_frequent, 1, sum(1 for p in patterns if p.size == 1))
        return hlh1

    # ------------------------------------------------------------------
    # Step 2.2, k = 2
    # ------------------------------------------------------------------

    def _pair_allowed(self, event_a: str, event_b: str) -> bool:
        if self.pair_filter is None:
            return True
        series_a, series_b = series_of(event_a), series_of(event_b)
        if series_a == series_b:
            return True
        return frozenset((series_a, series_b)) in self.pair_filter

    def _mine_two_event_patterns(
        self, hlh1: HLH1, patterns: list[SeasonalPattern], stats: MiningStats
    ) -> HLHk:
        params = self.params
        hlh2 = HLHk(k=2)
        f1 = sorted(hlh1.candidates)
        for event_a, event_b in combinations_with_replacement(f1, 2):
            if not self._pair_allowed(event_a, event_b):
                continue
            stats.bump(stats.n_groups_generated, 2)
            support = intersect_sorted(hlh1.support_of(event_a), hlh1.support_of(event_b))
            if self.pruning.apriori and not is_candidate(len(support), params):
                continue
            hlh2.add_group((event_a, event_b), support)
            stats.bump(stats.n_candidate_groups, 2)
            pattern_support: dict[TemporalPattern, list[int]] = {}
            pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
            for granule in support:
                instances_a = hlh1.instances_of(event_a, granule)
                if event_a == event_b:
                    pairs = combinations(instances_a, 2)
                else:
                    pairs = product(instances_a, hlh1.instances_of(event_b, granule))
                for a, b in pairs:
                    located = relation_of_pair(a, b, params.relation)
                    if located is None:
                        continue
                    relation, earlier, later = located
                    pattern = TemporalPattern(
                        (earlier.event, later.event),
                        (Triple(relation, earlier.event, later.event),),
                    )
                    support_list = pattern_support.setdefault(pattern, [])
                    if not support_list or support_list[-1] != granule:
                        support_list.append(granule)
                    pattern_assignments.setdefault(pattern, {}).setdefault(
                        granule, []
                    ).append((earlier, later))
            self._register_patterns(
                hlh2, pattern_support, pattern_assignments, patterns, stats
            )
        return hlh2

    # ------------------------------------------------------------------
    # Step 2.2, k >= 3
    # ------------------------------------------------------------------

    def _mine_k_event_patterns(
        self,
        hlh1: HLH1,
        previous: HLHk,
        candidate_triples: set[Triple],
        k: int,
        patterns: list[SeasonalPattern],
        stats: MiningStats,
    ) -> HLHk:
        params = self.params
        hlhk = HLHk(k=k)
        if self.pruning.transitivity:
            filtered_f1 = sorted(previous.events_in_patterns())
        else:
            filtered_f1 = sorted(hlh1.candidates)
        seen_groups: set[tuple[str, ...]] = set()
        for group_prev in previous.groups:
            entry_prev = previous.ehk[group_prev]
            if not entry_prev.patterns:
                continue
            for event in filtered_f1:
                group = tuple(sorted(group_prev + (event,)))
                if group in seen_groups:
                    continue
                seen_groups.add(group)
                stats.bump(stats.n_groups_generated, k)
                support = intersect_sorted(entry_prev.support, hlh1.support_of(event))
                if self.pruning.apriori and not is_candidate(len(support), params):
                    continue
                hlhk.add_group(group, support)
                stats.bump(stats.n_candidate_groups, k)
                pattern_support, pattern_assignments = self._extend_patterns(
                    hlh1, previous, entry_prev, event, candidate_triples
                )
                self._register_patterns(
                    hlhk, pattern_support, pattern_assignments, patterns, stats
                )
        return hlhk

    def _extend_patterns(
        self,
        hlh1: HLH1,
        previous: HLHk,
        entry_prev,
        event: str,
        candidate_triples: set[Triple],
    ) -> tuple[
        dict[TemporalPattern, list[int]],
        dict[TemporalPattern, dict[int, list[Assignment]]],
    ]:
        """Extend every candidate pattern of one parent group with ``event``.

        This is the Iterative Check of Sec. IV-D 4.2.2: each new relation
        triple between an existing event and the new event must already be
        a candidate 2-event pattern, otherwise the extension is discarded.
        """
        relation = self.params.relation
        check_candidates = self.pruning.apriori
        # Keyed by (events, triples) plain tuples in the hot loop; converted
        # to TemporalPattern objects once per unique pattern at the end.
        accumulator: dict[tuple, dict[int, set[Assignment]]] = {}
        # Per-granule cache of oriented relation triples: each (existing
        # instance, new instance) pair is related exactly once even though
        # it appears in many parent assignments.
        pair_cache: dict[int, dict[tuple[EventInstance, EventInstance], tuple | None]] = {}
        event_support = hlh1.support_of(event)
        for pattern_prev in entry_prev.patterns:
            prev_events = pattern_prev.events
            prev_triples = pattern_prev.triples
            k = len(prev_events) + 1
            common = intersect_sorted(previous.support_of(pattern_prev), event_support)
            for granule in common:
                new_instances = hlh1.instances_of(event, granule)
                cache = pair_cache.setdefault(granule, {})
                for assignment in previous.assignments_of(pattern_prev, granule):
                    for instance in new_instances:
                        if instance in assignment:
                            continue
                        position = 0
                        partner: list[Triple] = []
                        valid = True
                        for existing in assignment:
                            pair = (existing, instance)
                            info = cache.get(pair, False)
                            if info is False:
                                info = oriented_triple(existing, instance, relation)
                                cache[pair] = info
                            if info is None:
                                valid = False
                                break
                            existing_first, triple = info
                            if existing_first:
                                position += 1
                            if check_candidates and triple not in candidate_triples:
                                valid = False
                                break
                            partner.append(triple)
                        if not valid:
                            continue
                        events = (
                            prev_events[:position]
                            + (instance.event,)
                            + prev_events[position:]
                        )
                        triples = splice_triples(prev_triples, partner, position, k)
                        ordered = (
                            assignment[:position]
                            + (instance,)
                            + assignment[position:]
                        )
                        # The same assignment can be reached through two
                        # parent patterns when the new pattern embeds the
                        # parent group's events in more than one way, so
                        # deduplicate per granule.
                        per_granule = accumulator.setdefault((events, triples), {})
                        per_granule.setdefault(granule, set()).add(ordered)
        pattern_support: dict[TemporalPattern, list[int]] = {}
        pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
        for (events, triples), per_granule in accumulator.items():
            pattern = TemporalPattern(events, triples)
            pattern_support[pattern] = sorted(per_granule)
            pattern_assignments[pattern] = {
                granule: sorted(assignments)
                for granule, assignments in per_granule.items()
            }
        return pattern_support, pattern_assignments

    # ------------------------------------------------------------------
    # Shared registration of candidate + frequent patterns
    # ------------------------------------------------------------------

    def _register_patterns(
        self,
        hlhk: HLHk,
        pattern_support: dict[TemporalPattern, list[int]],
        pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]],
        patterns: list[SeasonalPattern],
        stats: MiningStats,
    ) -> None:
        params = self.params
        for pattern, support in pattern_support.items():
            if self.pruning.apriori and not is_candidate(len(support), params):
                continue
            hlhk.add_pattern(pattern, support, pattern_assignments[pattern])
            stats.bump(stats.n_candidate_patterns, hlhk.k)
            view = compute_seasons(support, params)
            if view.n_seasons >= params.min_season:
                patterns.append(SeasonalPattern(pattern, view))
                stats.bump(stats.n_frequent, hlhk.k)


def mine_seasonal_patterns(
    dseq: TemporalSequenceDatabase,
    params: MiningParams,
    pruning: PruningConfig | None = None,
) -> MiningResult:
    """Convenience wrapper: run E-STPM with the given (or full) pruning."""
    if len(dseq) == 0:
        raise MiningError("cannot mine an empty DSEQ")
    miner = ESTPM(dseq, params, pruning or PruningConfig.all())
    return miner.mine()
