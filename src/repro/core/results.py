"""Mining results (frequent seasonal patterns plus run statistics)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pattern import TemporalPattern
from repro.core.seasonality import SeasonView
from repro.resilience.policy import FailedTask


@dataclass(frozen=True)
class SeasonalPattern:
    """One frequent seasonal temporal pattern with its seasonal evidence."""

    pattern: TemporalPattern
    seasons: SeasonView

    @property
    def size(self) -> int:
        """Number of events in the pattern."""
        return self.pattern.size

    @property
    def n_seasons(self) -> int:
        """``seasons(P)`` -- how many seasons the pattern has."""
        return self.seasons.n_seasons

    @property
    def support(self) -> tuple[int, ...]:
        """The pattern's support set ``SUP_P``."""
        return self.seasons.support

    def describe(self) -> str:
        """Readable one-line rendering with season count."""
        return f"{self.pattern.describe()}  [seasons={self.n_seasons}]"


@dataclass
class MiningStats:
    """Counters describing the work a mining run performed."""

    n_granules: int = 0
    n_events_scanned: int = 0
    n_candidate_events: int = 0
    n_groups_generated: dict[int, int] = field(default_factory=dict)
    n_candidate_groups: dict[int, int] = field(default_factory=dict)
    n_candidate_patterns: dict[int, int] = field(default_factory=dict)
    n_frequent: dict[int, int] = field(default_factory=dict)
    n_series_pruned: int = 0
    n_events_pruned: int = 0
    mi_seconds: float = 0.0
    mining_seconds: float = 0.0
    peak_memory_bytes: int = 0

    def bump(self, counter: dict[int, int], k: int, amount: int = 1) -> None:
        """Increment a per-level counter."""
        counter[k] = counter.get(k, 0) + amount


@dataclass
class MiningResult:
    """Everything a mining run returns.

    ``patterns`` contains the frequent seasonal patterns of every length
    (including the 1-event frequent seasonal events, which the paper's
    Alg. 1 also inserts into the output set P).

    ``failures`` lists the quarantined tasks of a non-strict run: group
    tasks that failed all their retry attempts and were excised instead
    of aborting the job.  A strict run (the default) never produces a
    result with failures -- it raises -- so a populated list always
    marks a knowingly partial result, and :func:`results_equivalent`
    treats it as inequivalent to everything.
    """

    patterns: list[SeasonalPattern]
    stats: MiningStats
    failures: list[FailedTask] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when no task was quarantined (the result is total)."""
        return not self.failures

    def __len__(self) -> int:
        return len(self.patterns)

    def by_size(self, k: int) -> list[SeasonalPattern]:
        """Frequent seasonal patterns with exactly ``k`` events."""
        return [sp for sp in self.patterns if sp.size == k]

    def pattern_keys(self) -> set[TemporalPattern]:
        """The pattern identity set (used by the accuracy metric)."""
        return {sp.pattern for sp in self.patterns}

    def seasonal_map(self) -> dict[TemporalPattern, SeasonView]:
        """Pattern identity -> full seasonal evidence, order-free.

        This is the semantic content of a mining result: which patterns
        are frequent and on which support / near sets / seasons.  Used by
        the streaming parity checks, which compare results produced in
        different emission orders.
        """
        return {sp.pattern: sp.seasons for sp in self.patterns}

    def multi_event_keys(self) -> set[TemporalPattern]:
        """Pattern identities of the k >= 2 patterns only."""
        return {sp.pattern for sp in self.patterns if sp.size >= 2}

    def describe(self, limit: int = 20) -> str:
        """A short textual report of the top patterns by season count."""
        ordered = sorted(self.patterns, key=lambda sp: (-sp.n_seasons, sp.size))
        lines = [sp.describe() for sp in ordered[:limit]]
        if len(ordered) > limit:
            lines.append(f"... and {len(ordered) - limit} more")
        return "\n".join(lines)


def results_equivalent(left: MiningResult, right: MiningResult) -> bool:
    """Do two results contain the same patterns with the same evidence?

    Equivalence is order-insensitive: the batch miner emits patterns in
    HLH level/group order while the streaming miner emits them in
    canonical order, but both must agree on the frequent pattern set and
    on every pattern's support, near support sets, and seasons.

    Equivalence is also *strict about completeness*: a result carrying
    quarantined failures is partial -- some group's patterns are simply
    missing -- so it is never equivalent to anything, including a result
    with the identical pattern map.  Recovery counts as success only
    when it reproduced the whole answer.
    """
    if left.failures or right.failures:
        return False
    return left.seasonal_map() == right.seasonal_map()
