"""Lambert W function (Corless et al. [46]), used by Theorem 1.

Theorem 1's lower bound evaluates ``e^{W(c)}`` for a negative argument
``c in [-1/e, 0)``, where the principal branch ``W0`` applies.  We
implement ``W0`` (and ``W_-1`` for completeness) with Halley's iteration,
accurate to ~1e-12; the test suite validates both branches against
``scipy.special.lambertw``.
"""

from __future__ import annotations

import math

from repro.exceptions import MiningError

#: The branch point -1/e below which W has no real value.
BRANCH_POINT = -1.0 / math.e

_MAX_ITERATIONS = 64
_TOLERANCE = 1e-14


def _halley(x: float, w: float) -> float:
    """Refine an initial guess ``w`` of W(x) with Halley's method."""
    for _ in range(_MAX_ITERATIONS):
        e_w = math.exp(w)
        f = w * e_w - x
        denominator = e_w * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0)
        if denominator == 0.0:
            break
        step = f / denominator
        w -= step
        if abs(step) <= _TOLERANCE * (1.0 + abs(w)):
            break
    return w


def lambert_w0(x: float) -> float:
    """Principal branch ``W0(x)`` for ``x >= -1/e``."""
    if x < BRANCH_POINT - 1e-12:
        raise MiningError(f"W0 undefined for x={x} < -1/e")
    if x <= BRANCH_POINT:
        return -1.0
    if x == 0.0:
        return 0.0
    if x < 0.0:
        # Series-inspired guess near the branch point, else log-based.
        p = math.sqrt(2.0 * (math.e * x + 1.0))
        w = -1.0 + p - p * p / 3.0
    elif x < math.e:
        w = x / math.e
    else:
        log_x = math.log(x)
        w = log_x - math.log(log_x)
    return _halley(x, w)


def lambert_w_minus1(x: float) -> float:
    """Secondary branch ``W_-1(x)`` for ``-1/e <= x < 0``."""
    if not BRANCH_POINT - 1e-12 <= x < 0.0:
        raise MiningError(f"W_-1 defined only on [-1/e, 0), got x={x}")
    if x <= BRANCH_POINT:
        return -1.0
    # Initial guess from the asymptotic expansion near 0- and the branch
    # point expansion near -1/e.
    if x > -0.1:
        log_neg = math.log(-x)
        w = log_neg - math.log(-log_neg)
    else:
        p = -math.sqrt(2.0 * (math.e * x + 1.0))
        w = -1.0 + p - p * p / 3.0
    return _halley(x, w)
