"""Phase 2 of FreqSTPfTS: seasonal temporal pattern mining (paper Secs. IV-V).

Public entry points:

* :class:`~repro.core.config.MiningParams` -- the four seasonal thresholds
  (maxPeriod, minDensity, distInterval, minSeason) plus relation settings.
* :class:`~repro.core.stpm.ESTPM` -- the exact miner (Alg. 1) with
  configurable pruning (:class:`~repro.core.prune.PruningConfig`).
* :class:`~repro.core.approximate.ASTPM` -- the MI-based approximate miner
  (Alg. 2).
* :class:`~repro.core.results.MiningResult` -- patterns plus statistics.
* :class:`~repro.core.supportset.SupportSet` -- the support-set algebra
  (bitset / sorted-list representations).
* :class:`~repro.core.executor.MiningExecutor` -- serial / process-pool /
  thread-pool execution backends for the per-group mining work, with
  reusable worker pools (see :func:`~repro.core.executor.executor_scope`).
"""

from repro.core.config import MiningParams
from repro.core.approximate import ASTPM
from repro.core.executor import (
    MiningExecutor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_scope,
    resolve_executor,
    set_default_executor,
)
from repro.core.pattern import TemporalPattern, Triple
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult, SeasonalPattern
from repro.core.seasonality import SeasonView, compute_seasons, max_season
from repro.core.stpm import ESTPM
from repro.core.supportset import (
    BitsetSupportSet,
    ListSupportSet,
    SupportSet,
    make_support_set,
    set_default_backend,
)

__all__ = [
    "MiningParams",
    "PruningConfig",
    "ESTPM",
    "ASTPM",
    "TemporalPattern",
    "Triple",
    "MiningResult",
    "SeasonalPattern",
    "SeasonView",
    "compute_seasons",
    "max_season",
    "SupportSet",
    "BitsetSupportSet",
    "ListSupportSet",
    "make_support_set",
    "set_default_backend",
    "MiningExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "ThreadExecutor",
    "executor_scope",
    "resolve_executor",
    "set_default_executor",
]
