"""Seasonality measures (paper Defs. 3.13-3.15 and Eq. (1)).

Given the support set of an event / group / pattern, this module computes:

* its maximal *near support sets* -- maximal runs whose consecutive-granule
  periods are all <= ``max_period`` (Def. 3.13);
* its *seasons* -- near support sets of density >= ``min_density`` chained
  so that consecutive season distances lie in ``dist_interval``
  (Defs. 3.14-3.15);
* its ``maxSeason`` upper bound ``|SUP| / min_density`` (Eq. (1)), the
  anti-monotone measure behind the Apriori-like pruning (Lemmas 1-2).

Season chaining semantics
-------------------------
The paper defines seasons per near support set and requires every pair of
consecutive seasons to respect ``dist_interval``; its worked example
(Sec. IV-B) drops granule H9 from a near set because it starts closer than
``dist_min`` to the previous season.  We pin this down as a left-to-right
chain construction:

1. Split the support set into maximal near support sets (gap <= maxPeriod).
2. Walk the near sets in order, maintaining the current chain of seasons:
   * while the next set starts closer than ``dist_min`` to the end of the
     last season, its leading granules are trimmed (the H9 rule);
   * a (possibly trimmed) set with density >= ``min_density`` joins the
     chain if its distance is <= ``dist_max``; sparser sets are skipped;
   * a distance > ``dist_max`` breaks the chain and starts a new one.
3. ``seasons(P)`` is the length of the longest chain.

For support sets whose near sets chain without breaks (the common case and
all of the paper's examples) this is exactly the paper's definition.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator

from repro.core.config import MiningParams, get_numpy
from repro.core.supportset import SupportLike, as_positions

#: Support size at or above which the batched season counter splits near
#: sets with one vectorized diff instead of the streaming generator.
_NUMPY_MIN_POSITIONS = 64


def max_season(support_size: int, min_density: int) -> float:
    """The maximum seasonal occurrence bound of Eq. (1): ``|SUP|/minDensity``."""
    return support_size / min_density


def is_candidate(support_size: int, params: MiningParams) -> bool:
    """Candidate gate of Sec. IV-B: ``maxSeason >= minSeason``."""
    return max_season(support_size, params.min_density) >= params.min_season


def _iter_near_sets(support, max_period: int) -> Iterator[list[int]]:
    """Stream the maximal near support sets one at a time.

    The single source of truth for the Def. 3.13 split (gap <=
    maxPeriod); only the current set is materialized, so counting
    callers never hold the full decomposition.
    """
    current: list[int] = []
    for position in support:
        if current and position - current[-1] > max_period:
            yield current
            current = [position]
        else:
            current.append(position)
    if current:
        yield current


def split_near_support_sets(support: SupportLike, max_period: int) -> list[list[int]]:
    """Maximal near support sets: split where the period exceeds maxPeriod.

    ``support`` may be a plain sorted position list or any
    :class:`~repro.core.supportset.SupportSet` representation.
    """
    return list(_iter_near_sets(as_positions(support), max_period))


def season_distance(season_i: list[int], season_j: list[int]) -> int:
    """Distance between consecutive seasons (Sec. III-E):
    ``|p(last of season_i) - p(first of season_j)|``."""
    return abs(season_j[0] - season_i[-1])


@dataclass(frozen=True)
class SeasonView:
    """The seasonal decomposition of one support set.

    Attributes
    ----------
    support:
        The support set the view was computed from.
    near_sets:
        Its maximal near support sets (before density/distance filtering).
    seasons:
        The longest chain of seasons found (see module docstring).
    """

    support: tuple[int, ...]
    near_sets: tuple[tuple[int, ...], ...]
    seasons: tuple[tuple[int, ...], ...]

    @property
    def n_seasons(self) -> int:
        """``seasons(P)`` -- the number of seasons in the best chain."""
        return len(self.seasons)

    def densities(self) -> list[int]:
        """Density of each season (granule counts)."""
        return [len(season) for season in self.seasons]

    def distances(self) -> list[int]:
        """Distances between consecutive seasons in the chain."""
        return [
            season_distance(list(a), list(b))
            for a, b in zip(self.seasons, self.seasons[1:])
        ]


def _chain_seasons(
    near_sets: list[list[int]], params: MiningParams
) -> list[list[list[int]]]:
    """All season chains, built left-to-right with the H9 trimming rule."""
    chains: list[list[list[int]]] = []
    current: list[list[int]] = []
    for near_set in near_sets:
        candidate = near_set
        if current:
            last_end = current[-1][-1]
            # Trim leading granules that sit closer than dist_min (H9 rule).
            start_index = 0
            while (
                start_index < len(candidate)
                and candidate[start_index] - last_end < params.dist_min
            ):
                start_index += 1
            candidate = candidate[start_index:]
            if not candidate:
                continue
            distance = candidate[0] - last_end
            if distance > params.dist_max:
                # Chain broken by a too-long gap; start fresh from this set.
                chains.append(current)
                current = []
                candidate = near_set
        if len(candidate) >= params.min_density:
            current.append(candidate)
    if current:
        chains.append(current)
    return chains


def compute_seasons(support: SupportLike, params: MiningParams) -> SeasonView:
    """Full seasonal decomposition of a support set under ``params``.

    Accepts a plain sorted position list or either
    :class:`~repro.core.supportset.SupportSet` representation -- this is
    the point where a lazily-packed bitset support is materialized.
    """
    support = as_positions(support)
    near_sets = split_near_support_sets(support, params.max_period)
    chains = _chain_seasons(near_sets, params)
    best: list[list[int]] = max(chains, key=len) if chains else []
    return SeasonView(
        support=tuple(support),
        near_sets=tuple(tuple(s) for s in near_sets),
        seasons=tuple(tuple(s) for s in best),
    )


def count_seasons(
    support: SupportLike, params: MiningParams, stop_at: int | None = None
) -> int:
    """``seasons(P)`` without materializing a :class:`SeasonView`.

    Streams the chain construction of :func:`_chain_seasons` over the
    near sets one at a time -- no view tuples, no list of chains, just
    the running chain length and the best seen.  With ``stop_at`` the
    walk returns as soon as the current chain reaches that many seasons
    (chains only grow until a ``dist_max`` break, so any prefix reaching
    ``stop_at`` proves ``seasons(P) >= stop_at``) -- the early exit the
    frequency gate of Def. 3.15 needs.

    Equivalent to ``compute_seasons(support, params).n_seasons`` when
    ``stop_at`` is ``None`` (pinned by the regression and property
    tests); with ``stop_at`` the result is only guaranteed on the
    ``>= stop_at`` side of the comparison.
    """
    support = as_positions(support)
    dist_min = params.dist_min
    dist_max = params.dist_max
    min_density = params.min_density
    best = 0
    current = 0
    last_end = 0
    for near_set in _iter_near_sets(support, params.max_period):
        start_index = 0
        if current:
            # Trim leading granules that sit closer than dist_min to the
            # end of the last season (the H9 rule).
            start_index = bisect_left(near_set, last_end + dist_min)
            if start_index == len(near_set):
                continue
            if near_set[start_index] - last_end > dist_max:
                # Chain broken by a too-long gap; start fresh from the
                # untrimmed set.
                if current > best:
                    best = current
                current = 0
                start_index = 0
        if len(near_set) - start_index >= min_density:
            current += 1
            last_end = near_set[-1]
            if stop_at is not None and current >= stop_at:
                return current
    return best if best > current else current


def count_seasons_batch(
    supports: list[SupportLike], params: MiningParams, stop_at: int | None = None
) -> list[int]:
    """``seasons(P)`` for many support sets at once (step-2.1 season gate).

    Semantically a list of :func:`count_seasons` results (same early-exit
    contract per element when ``stop_at`` is given).  With numpy enabled,
    each large support materializes its packed bit positions once and the
    Def. 3.13 near-set split becomes a single vectorized period diff; the
    chain walk then runs on ``(lo, hi)`` index windows with no per-set
    list slicing.  Under ``REPRO_COMPUTE=python`` this is exactly the
    scalar counter per element.
    """
    np = get_numpy()
    if np is None:
        return [count_seasons(support, params, stop_at=stop_at) for support in supports]
    max_period = params.max_period
    dist_min = params.dist_min
    dist_max = params.dist_max
    min_density = params.min_density
    counts: list[int] = []
    for support in supports:
        positions = as_positions(support)
        n = len(positions)
        if n < _NUMPY_MIN_POSITIONS:
            counts.append(count_seasons(positions, params, stop_at=stop_at))
            continue
        arr = np.asarray(positions, dtype=np.int64)
        splits = (np.flatnonzero(arr[1:] - arr[:-1] > max_period) + 1).tolist()
        best = 0
        current = 0
        last_end = 0
        early = False
        for lo, hi in zip([0, *splits], [*splits, n]):
            start_index = lo
            if current:
                # The H9 trimming rule, on the near set's index window.
                start_index = bisect_left(positions, last_end + dist_min, lo, hi)
                if start_index == hi:
                    continue
                if positions[start_index] - last_end > dist_max:
                    if current > best:
                        best = current
                    current = 0
                    start_index = lo
            if hi - start_index >= min_density:
                current += 1
                last_end = positions[hi - 1]
                if stop_at is not None and current >= stop_at:
                    early = True
                    break
        counts.append(current if early else (best if best > current else current))
    return counts


def is_frequent_seasonal(support: SupportLike, params: MiningParams) -> bool:
    """Def. 3.15 check: at least ``min_season`` chained seasons.

    Uses the early-exit chain counter: the walk stops at the first
    ``min_season`` chained seasons and allocates no season views.
    """
    return count_seasons(support, params, stop_at=params.min_season) >= params.min_season
