"""Pruning configuration for E-STPM (paper Sec. VI-C3).

The evaluation compares four variants of the exact miner:

* ``NoPrune`` -- neither technique;
* ``Apriori`` -- the maxSeason-based candidate filtering (Lemmas 1-2);
* ``Trans``   -- the transitivity filtering of F1 (Lemmas 3-4);
* ``All``     -- both (the default E-STPM).

Both prunings are *lossless*: they only discard candidates that provably
cannot be frequent seasonal patterns, so all four variants return identical
pattern sets (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PruningConfig:
    """Which E-STPM pruning techniques are active."""

    apriori: bool = True
    transitivity: bool = True

    @classmethod
    def none(cls) -> "PruningConfig":
        """The (NoPrune) variant."""
        return cls(apriori=False, transitivity=False)

    @classmethod
    def apriori_only(cls) -> "PruningConfig":
        """The (Apriori) variant."""
        return cls(apriori=True, transitivity=False)

    @classmethod
    def transitivity_only(cls) -> "PruningConfig":
        """The (Trans) variant."""
        return cls(apriori=False, transitivity=True)

    @classmethod
    def all(cls) -> "PruningConfig":
        """The (All) variant -- the default E-STPM."""
        return cls(apriori=True, transitivity=True)

    @property
    def label(self) -> str:
        """The paper's variant name for reports."""
        if self.apriori and self.transitivity:
            return "All"
        if self.apriori:
            return "Apriori"
        if self.transitivity:
            return "Trans"
        return "NoPrune"


#: All four ablation variants in the paper's plotting order.
ALL_VARIANTS = (
    PruningConfig.none(),
    PruningConfig.apriori_only(),
    PruningConfig.transitivity_only(),
    PruningConfig.all(),
)
