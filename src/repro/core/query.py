"""Query API over mining results.

Mining runs on real data return thousands of patterns (Tables IX-X); this
module provides the filters an analyst needs to navigate them: by event,
by series, by relation type, by seasonal strength, and by structural
containment (sub-/super-pattern search using Def. 3.8's ``P1 ⊆ P``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.pattern import TemporalPattern
from repro.core.results import MiningResult, SeasonalPattern
from repro.core.stpm import series_of


@dataclass(frozen=True)
class PatternQuery:
    """A composable filter over a :class:`MiningResult`.

    All constraints are conjunctive; unset fields do not filter.  Build
    fluently::

        PatternQuery().with_series("WindSpeed").min_size(2).min_seasons(6)
    """

    events: frozenset[str] = frozenset()
    series: frozenset[str] = frozenset()
    relations: frozenset[str] = frozenset()
    size_at_least: int = 1
    size_at_most: int | None = None
    seasons_at_least: int = 0

    def with_events(self, *events: str) -> "PatternQuery":
        """Require every listed event to occur in the pattern."""
        return replace(self, events=self.events | set(events))

    def with_series(self, *series: str) -> "PatternQuery":
        """Require at least one event of every listed series."""
        return replace(self, series=self.series | set(series))

    def with_relations(self, *relations: str) -> "PatternQuery":
        """Require every listed relation type to occur in the pattern."""
        return replace(self, relations=self.relations | set(relations))

    def min_size(self, k: int) -> "PatternQuery":
        """Require at least ``k`` events."""
        return replace(self, size_at_least=k)

    def max_size(self, k: int) -> "PatternQuery":
        """Require at most ``k`` events."""
        return replace(self, size_at_most=k)

    def min_seasons(self, n: int) -> "PatternQuery":
        """Require at least ``n`` seasons."""
        return replace(self, seasons_at_least=n)

    def matches(self, sp: SeasonalPattern) -> bool:
        """Does one seasonal pattern satisfy every constraint?"""
        if sp.size < self.size_at_least:
            return False
        if self.size_at_most is not None and sp.size > self.size_at_most:
            return False
        if sp.n_seasons < self.seasons_at_least:
            return False
        pattern_events = set(sp.pattern.events)
        if not self.events <= pattern_events:
            return False
        if self.series:
            pattern_series = {series_of(event) for event in pattern_events}
            if not self.series <= pattern_series:
                return False
        if self.relations:
            pattern_relations = {triple.relation for triple in sp.pattern.triples}
            if not self.relations <= pattern_relations:
                return False
        return True

    def run(self, result: MiningResult) -> list[SeasonalPattern]:
        """Matching patterns, strongest seasonality first."""
        matched = [sp for sp in result.patterns if self.matches(sp)]
        matched.sort(key=lambda sp: (-sp.n_seasons, -sp.size, sp.pattern.describe()))
        return matched


def superpatterns_of(
    pattern: TemporalPattern, result: MiningResult
) -> list[SeasonalPattern]:
    """All result patterns that contain ``pattern`` as a sub-pattern."""
    return [
        sp
        for sp in result.patterns
        if sp.pattern != pattern and pattern.is_subpattern_of(sp.pattern)
    ]


def subpatterns_of(
    pattern: TemporalPattern, result: MiningResult
) -> list[SeasonalPattern]:
    """All result patterns contained in ``pattern``."""
    return [
        sp
        for sp in result.patterns
        if sp.pattern != pattern and sp.pattern.is_subpattern_of(pattern)
    ]
