"""Support sets and their algebra (paper Def. 3.12).

A support set is the increasing list of granule positions where an event,
an event group, or a pattern occurs.  Group supports are intersections of
event supports -- the operation HLHk's ``EHk`` table performs when growing
k-event groups (paper Sec. IV-D 4.1).
"""

from __future__ import annotations


def intersect_sorted(left: list[int], right: list[int]) -> list[int]:
    """Intersection of two sorted position lists (linear two-pointer merge)."""
    result: list[int] = []
    i = j = 0
    len_left, len_right = len(left), len(right)
    while i < len_left and j < len_right:
        a, b = left[i], right[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return result


def intersect_many(supports: list[list[int]]) -> list[int]:
    """Intersection of several sorted support sets, smallest-first for speed."""
    if not supports:
        return []
    ordered = sorted(supports, key=len)
    result = ordered[0]
    for other in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, other)
    return result


def is_sorted_strict(positions: list[int]) -> bool:
    """True if positions are strictly increasing (a valid support set)."""
    return all(a < b for a, b in zip(positions, positions[1:]))
