"""Pre-index reference kernels for step 2.2 (parity baseline).

These are the object-at-a-time pair-enumeration and group-extension
loops the miner shipped before the columnar instance index: every
``(a, b)`` instance product goes through
:func:`~repro.events.relations.relation_of_pair` /
:func:`~repro.core.pattern.oriented_triple`, every accepted pair builds
a fresh :class:`~repro.core.pattern.TemporalPattern`, and assignments
are stored as :class:`~repro.events.event.EventInstance` tuples.

They are kept verbatim as the semantics baseline: the parity tests run
whole mining jobs under ``kernel="reference"`` and assert
``results_equivalent`` against the sweep-join kernels, and the EXT5
benchmark measures the sweep kernels' speedup over these loops.  A job
runs entirely on one kernel (``ESTPM(kernel=...)``); the two kernels'
``GH_k`` encodings (instance tuples here, column-index tuples in the
sweep path) are never mixed.
"""

from __future__ import annotations

from itertools import combinations, product

from repro.core.hlh import HLH1, Assignment, HLHk
from repro.core.pattern import (
    TemporalPattern,
    Triple,
    oriented_triple,
    splice_triples,
)
from repro.events.event import EventInstance
from repro.events.relations import relation_of_pair


def reference_collect_pair_patterns(
    hlh1: HLH1,
    event_a: str,
    event_b: str,
    granules,
    relation,
    pattern_support: dict[TemporalPattern, list[int]],
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]],
) -> None:
    """Enumerate the related instance pairs of one event pair per granule.

    The pre-index inner loop of step 2.2 (k = 2): a full instance
    product with one ``relation_of_pair`` call and one fresh pattern
    object per accepted pair.
    """
    for granule in granules:
        instances_a = hlh1.instances_of(event_a, granule)
        if event_a == event_b:
            pairs = combinations(instances_a, 2)
        else:
            pairs = product(instances_a, hlh1.instances_of(event_b, granule))
        for a, b in pairs:
            located = relation_of_pair(a, b, relation)
            if located is None:
                continue
            rel, earlier, later = located
            pattern = TemporalPattern(
                (earlier.event, later.event),
                (Triple(rel, earlier.event, later.event),),
            )
            support_list = pattern_support.setdefault(pattern, [])
            if not support_list or support_list[-1] != granule:
                support_list.append(granule)
            pattern_assignments.setdefault(pattern, {}).setdefault(
                granule, []
            ).append((earlier, later))


def reference_extend_group_patterns(
    hlh1: HLH1,
    previous: HLHk,
    entry_prev,
    event: str,
    candidate_triples,
    params,
    check_candidates: bool,
    parent_patterns=None,
    granule_filter=None,
) -> tuple[
    dict[TemporalPattern, list[int]],
    dict[TemporalPattern, dict[int, list[Assignment]]],
]:
    """Extend every candidate pattern of one parent group with ``event``.

    The pre-index Iterative Check loop (Sec. IV-D 4.2.2), relating
    instance objects pair by pair with a value-keyed per-granule cache.
    """
    relation = params.relation
    if parent_patterns is None:
        parent_patterns = entry_prev.patterns
    accumulator: dict[tuple, dict[int, set[Assignment]]] = {}
    pair_cache: dict[int, dict[tuple[EventInstance, EventInstance], tuple | None]] = {}
    event_support = hlh1.support_of(event)
    for pattern_prev in parent_patterns:
        prev_events = pattern_prev.events
        prev_triples = pattern_prev.triples
        k = len(prev_events) + 1
        common = previous.support_of(pattern_prev) & event_support
        if granule_filter is not None:
            common = common & granule_filter
        for granule in common:
            new_instances = hlh1.instances_of(event, granule)
            cache = pair_cache.setdefault(granule, {})
            for assignment in previous.assignments_of(pattern_prev, granule):
                for instance in new_instances:
                    if instance in assignment:
                        continue
                    position = 0
                    partner: list[Triple] = []
                    valid = True
                    for existing in assignment:
                        pair = (existing, instance)
                        info = cache.get(pair, False)
                        if info is False:
                            info = oriented_triple(existing, instance, relation)
                            cache[pair] = info
                        if info is None:
                            valid = False
                            break
                        existing_first, triple = info
                        if existing_first:
                            position += 1
                        if check_candidates and triple not in candidate_triples:
                            valid = False
                            break
                        partner.append(triple)
                    if not valid:
                        continue
                    events = (
                        prev_events[:position]
                        + (instance.event,)
                        + prev_events[position:]
                    )
                    triples = splice_triples(prev_triples, partner, position, k)
                    ordered = (
                        assignment[:position]
                        + (instance,)
                        + assignment[position:]
                    )
                    per_granule = accumulator.setdefault((events, triples), {})
                    per_granule.setdefault(granule, set()).add(ordered)
    pattern_support: dict[TemporalPattern, list[int]] = {}
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
    for (events, triples), per_granule in accumulator.items():
        pattern = TemporalPattern(events, triples)
        pattern_support[pattern] = sorted(per_granule)
        pattern_assignments[pattern] = {
            granule: sorted(assignments)
            for granule, assignments in per_granule.items()
        }
    return pattern_support, pattern_assignments
