"""Hierarchical lookup hash structures HLH1 / HLHk (paper Figs. 4-6).

``HLH1`` keeps candidate seasonal *single events*:

* ``EH``  (single event hash table): event key -> support set granules;
* ``GH``  (event granule hash table): the event's granules -> the event
  instances occurring there.

``HLHk`` (k >= 2) keeps candidate seasonal *k-event groups and patterns*:

* ``EHk`` (k-event hash table): sorted k-event group -> group support set
  plus the group's candidate patterns;
* ``PHk`` (pattern hash table): candidate pattern -> its support granules;
* ``GHk`` (pattern granule hash table): per granule, the instance tuples
  from which the pattern's relations are formed.

The Python dictionaries are the hash tables; the "hierarchical" linking of
the paper (EH values are GH keys, EHk values feed PHk, PHk values feed GHk)
is realized by sharing the same key objects across levels.

Supports are stored as whatever representation the miner hands in --
:class:`~repro.core.supportset.SupportSet` bitsets on the hot path, plain
sorted lists in legacy callers; the structures never convert.  The
``candidates`` / ``groups`` / ``patterns`` views are cached lists that are
invalidated on insertion: the mining loops read them once per level, and
rebuilding a fresh list per property access was measurable in the hot
loops.  Treat the returned lists as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instance_index import EMPTY_COLUMN, InstanceColumn, decode_assignment
from repro.core.pattern import TemporalPattern
from repro.core.supportset import SupportLike
from repro.events.event import EventInstance


@dataclass
class HLH1:
    """Candidate seasonal single events with their supports and instances."""

    eh: dict[str, SupportLike] = field(default_factory=dict)
    gh: dict[str, dict[int, list[EventInstance]]] = field(default_factory=dict)
    _candidates: list[str] | None = field(default=None, repr=False, compare=False)
    #: Lazily built columnar instance tables per (event, granule) -- the
    #: step-2.2 kernels' view of GH.  Never pickled: worker processes
    #: rebuild their own columns from the broadcast ``gh`` tables.
    _columns: dict[str, dict[int, InstanceColumn]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def add_event(
        self,
        event: str,
        support: SupportLike,
        instances_by_granule: dict[int, list[EventInstance]],
        columns: dict[int, InstanceColumn] | None = None,
    ) -> None:
        """Insert a candidate single event (Alg. 1 line 4).

        ``columns``, if given, installs prebuilt per-granule instance
        columns (the columnar front end hands over the tables it already
        materialized); granules missing from it still build lazily via
        :meth:`column_of`.
        """
        self.eh[event] = support
        self.gh[event] = instances_by_granule
        self._candidates = None
        if columns is None:
            self._columns.pop(event, None)
        else:
            self._columns[event] = dict(columns)

    def support_of(self, event: str) -> SupportLike:
        """Support set of a candidate event (``SUP_E``)."""
        return self.eh[event]

    def instances_of(self, event: str, granule: int) -> list[EventInstance]:
        """Instances of ``event`` at ``granule``."""
        return self.gh[event].get(granule, [])

    def column_of(self, event: str, granule: int) -> InstanceColumn:
        """The start-sorted instance column of ``(event, granule)``.

        Built on first access and cached for the life of the structure
        (GH's per-granule instance lists are write-once: the batch miner
        fills them before step 2.2, the streaming miner only adds *new*
        granule keys).  Missing granules share :data:`EMPTY_COLUMN`.
        """
        per_event = self._columns.get(event)
        if per_event is None:
            per_event = self._columns[event] = {}
        column = per_event.get(granule)
        if column is None:
            instances = self.gh.get(event, {}).get(granule)
            column = InstanceColumn.from_instances(instances) if instances else EMPTY_COLUMN
            per_event[granule] = column
        return column

    def __getstate__(self):
        """Pickle only the hash tables; caches are per-process state."""
        return {"eh": self.eh, "gh": self.gh}

    def __setstate__(self, state) -> None:
        self.eh = state["eh"]
        self.gh = state["gh"]
        self._candidates = None
        self._columns = {}

    @property
    def candidates(self) -> list[str]:
        """The candidate single events F1, in insertion order (read-only)."""
        if self._candidates is None:
            self._candidates = list(self.eh)
        return self._candidates

    def __len__(self) -> int:
        return len(self.eh)

    def __contains__(self, event: str) -> bool:
        return event in self.eh


#: One realizing assignment of a pattern, chronologically ordered -- what
#: GHk stores per granule.  Under the sweep kernels (the default) this is
#: the *compact encoding*: a tuple of column indices parallel to the
#: pattern's ``events`` (``assignment[i]`` indexes the instance of
#: ``pattern.events[i]`` in its ``(event, granule)`` column -- see
#: :mod:`repro.core.instance_index`).  Under the reference kernels it is
#: the classical tuple of :class:`EventInstance` objects.  A mining job
#: runs entirely on one kernel, so the two encodings never mix within a
#: structure; :meth:`HLHk.decoded_assignments_of` rematerializes
#: instance tuples from the compact form.
Assignment = tuple[EventInstance, ...] | tuple[int, ...]


@dataclass
class GroupEntry:
    """The EHk value object: group support + candidate patterns."""

    support: SupportLike
    patterns: list[TemporalPattern] = field(default_factory=list)


@dataclass
class HLHk:
    """Candidate seasonal k-event groups and patterns for one level k."""

    k: int
    ehk: dict[tuple[str, ...], GroupEntry] = field(default_factory=dict)
    phk: dict[TemporalPattern, SupportLike] = field(default_factory=dict)
    ghk: dict[TemporalPattern, dict[int, list[Assignment]]] = field(default_factory=dict)
    _groups: list[tuple[str, ...]] | None = field(default=None, repr=False, compare=False)
    _patterns: list[TemporalPattern] | None = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        """Pickle only the hash tables; cached list views are per-process."""
        return {"k": self.k, "ehk": self.ehk, "phk": self.phk, "ghk": self.ghk}

    def __setstate__(self, state) -> None:
        self.k = state["k"]
        self.ehk = state["ehk"]
        self.phk = state["phk"]
        self.ghk = state["ghk"]
        self._groups = None
        self._patterns = None

    def add_group(self, group: tuple[str, ...], support: SupportLike) -> GroupEntry:
        """Insert a candidate k-event group (Alg. 1 line 12)."""
        entry = GroupEntry(support=support)
        self.ehk[group] = entry
        self._groups = None
        return entry

    def add_pattern(
        self,
        pattern: TemporalPattern,
        support: SupportLike,
        assignments: dict[int, list[Assignment]],
    ) -> None:
        """Insert a candidate k-event pattern into PHk/GHk and its group."""
        self.phk[pattern] = support
        self.ghk[pattern] = assignments
        self._patterns = None
        entry = self.ehk.get(pattern.event_group)
        if entry is not None:
            entry.patterns.append(pattern)

    def remove_pattern(self, pattern: TemporalPattern) -> None:
        """Remove a candidate pattern from PHk/GHk and its group entry.

        Used by the streaming miner when a group's pattern state is
        rebuilt from scratch (its incremental premise broke); the batch
        miner never removes patterns.
        """
        self.phk.pop(pattern, None)
        self.ghk.pop(pattern, None)
        self._patterns = None
        entry = self.ehk.get(pattern.event_group)
        if entry is not None and pattern in entry.patterns:
            entry.patterns.remove(pattern)

    def support_of(self, pattern: TemporalPattern) -> SupportLike:
        """Support set of a candidate pattern (``SUP_P``)."""
        return self.phk[pattern]

    def assignments_of(self, pattern: TemporalPattern, granule: int) -> list[Assignment]:
        """Realizing assignments of ``pattern`` at ``granule`` (encoded)."""
        return self.ghk[pattern].get(granule, [])

    def decoded_assignments_of(
        self, pattern: TemporalPattern, granule: int, hlh1: HLH1
    ) -> list[tuple[EventInstance, ...]]:
        """Realizing *instance tuples* of ``pattern`` at ``granule``.

        Decodes the compact column-index assignments of the sweep
        kernels through ``hlh1``'s instance columns -- the reporting /
        inspection view of GHk.
        """
        events = pattern.events
        return [
            decode_assignment(hlh1, events, granule, encoded)
            for encoded in self.assignments_of(pattern, granule)
        ]

    @property
    def groups(self) -> list[tuple[str, ...]]:
        """Candidate k-event groups Fk, in insertion order (read-only)."""
        if self._groups is None:
            self._groups = list(self.ehk)
        return self._groups

    @property
    def patterns(self) -> list[TemporalPattern]:
        """Candidate k-event patterns, in insertion order (read-only)."""
        if self._patterns is None:
            self._patterns = list(self.phk)
        return self._patterns

    def events_in_patterns(self) -> set[str]:
        """Single events occurring in any candidate pattern of this level.

        This powers the transitivity filter (Lemma 4): only these events
        can extend a (k)-group into a candidate (k+1)-group.
        """
        present: set[str] = set()
        for pattern in self.phk:
            present.update(pattern.events)
        return present

    def __len__(self) -> int:
        return len(self.phk)
