"""Support-set engine: one algebra, two physical representations.

A support set (paper Def. 3.12) is the increasing set of granule positions
where an event, group, or pattern occurs.  The miners only ever need three
operations on it:

* **intersection** -- every candidate group in ``EHk`` is born from one
  (Sec. IV-D 4.1);
* **cardinality** -- the ``|SUP|`` of the maxSeason gate (Eq. (1));
* **ascending iteration** -- only when seasons are materialized or the
  group's granules are walked for instance enumeration.

:class:`SupportSet` abstracts those behind one interface with two backends:

* :class:`BitsetSupportSet` packs the positions into one Python big int
  (bit ``p`` set <=> granule ``p`` is in the set), so intersection is a
  single C-level ``&`` and cardinality a single ``int.bit_count()`` --
  the hot-path representation;
* :class:`ListSupportSet` keeps the classical sorted ``tuple[int]`` with a
  two-pointer merge, retained behind the same interface as the parity /
  fallback path.

Both compare equal to plain position lists/tuples so existing callers and
tests that treat support sets as sorted lists keep working unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

from repro.core.config import get_numpy
from repro.core.support import intersect_sorted
from repro.exceptions import ConfigError

#: Backend names accepted everywhere a representation can be chosen.
BACKEND_BITSET = "bitset"
BACKEND_LIST = "list"
SUPPORT_BACKENDS = (BACKEND_BITSET, BACKEND_LIST)

#: Anything the algebra accepts where a support set is expected.
SupportLike = Union["SupportSet", Sequence[int]]

#: Bitmasks at or below this bit length skip the chunked machine-word
#: paths -- a handful of big-int ops on a few words beats the ``to_bytes``
#: round trip.
_SMALL_BITS = 4096

#: Coarse granules folded per chunk by :func:`coarsen_bits` (the fine
#: chunk is ``factor`` times wider); multiples of 8 keep every chunk
#: byte-aligned for any factor.
_COARSEN_CHUNK = 512

#: Minimum position-list length before :func:`coarsen_positions` switches
#: to the vectorized stride-merge.
_NUMPY_MIN_POSITIONS = 1024


def bit_positions(bits: int) -> list[int]:
    """The set bit indices of a support bitmask, ascending.

    The low-bit extraction primitive shared by :class:`BitsetSupportSet`
    and the streaming miner's raw-bitmask state.  Small masks peel low
    bits off the int directly; larger ones are exported once with
    ``int.to_bytes`` and peeled word by word, so the total cost is linear
    in the mask length instead of quadratic (every ``bits ^= low`` on a
    big int copies the whole mask).
    """
    positions: list[int] = []
    if bits.bit_length() <= _SMALL_BITS:
        while bits:
            low = bits & -bits
            positions.append(low.bit_length() - 1)
            bits ^= low
        return positions
    data = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
    from_bytes = int.from_bytes
    for offset in range(0, len(data), 8):
        word = from_bytes(data[offset : offset + 8], "little")
        if not word:
            continue
        base = offset * 8
        while word:
            low = word & -word
            positions.append(base + low.bit_length() - 1)
            word ^= low
    return positions


def coarsen_bits(bits: int, factor: int, n_granules: int | None = None) -> int:
    """Fold a 1-based support bitmask onto a ``factor``-times coarser scale.

    Coarse bit ``q`` is set iff any fine bit in the block
    ``(q-1)*factor+1 .. q*factor`` is set -- the support-set image of the
    sequence mapping ``g: XS ->factor H``.  ``n_granules`` caps the coarse
    positions (granules beyond it come from a trailing partial block that
    the sequence mapping drops).

    Small masks fold with one mask/shift pair per coarse granule.  Large
    masks are exported once with ``int.to_bytes`` and folded in
    byte-aligned chunks of :data:`_COARSEN_CHUNK` coarse granules, so each
    shift touches a fixed-size machine-word window instead of the whole
    remaining big int -- linear total cost where the scalar loop is
    quadratic.
    """
    if factor < 1:
        raise ConfigError(f"coarsening factor must be >= 1, got {factor}")
    if factor == 1:
        folded = bits
        if n_granules is not None:
            folded &= (1 << (n_granules + 1)) - 1
        return folded
    block_mask = (1 << factor) - 1
    remaining = bits >> 1  # drop the never-set bit 0: fine position p -> bit p-1
    if remaining.bit_length() <= _SMALL_BITS:
        folded = 0
        coarse = 1
        while remaining:
            if n_granules is not None and coarse > n_granules:
                break
            if remaining & block_mask:
                folded |= 1 << coarse
            remaining >>= factor
            coarse += 1
        return folded
    data = remaining.to_bytes((remaining.bit_length() + 7) // 8, "little")
    from_bytes = int.from_bytes
    chunk_bytes = factor * (_COARSEN_CHUNK // 8)
    folded = 0
    coarse_base = 0
    for offset in range(0, len(data), chunk_bytes):
        if n_granules is not None and coarse_base >= n_granules:
            break
        chunk = from_bytes(data[offset : offset + chunk_bytes], "little")
        if chunk:
            local = 0
            position = 0
            while chunk:
                if chunk & block_mask:
                    local |= 1 << position
                chunk >>= factor
                position += 1
            folded |= local << (coarse_base + 1)
        coarse_base += _COARSEN_CHUNK
    if n_granules is not None:
        folded &= (1 << (n_granules + 1)) - 1
    return folded


def coarsen_positions(
    positions: Iterable[int], factor: int, n_granules: int | None = None
) -> list[int]:
    """Stride-merge ascending 1-based positions onto a coarser scale.

    The sorted-list counterpart of :func:`coarsen_bits`: fine position
    ``p`` maps to coarse position ``(p - 1) // factor + 1``; duplicates
    collapse (the input is ascending, so one comparison per position).
    Long inputs stride-merge vectorized when numpy is enabled (see
    :func:`repro.core.config.get_numpy`); the scalar loop is the always
    available fallback and the semantics reference.
    """
    if factor < 1:
        raise ConfigError(f"coarsening factor must be >= 1, got {factor}")
    if not isinstance(positions, (list, tuple)):
        positions = list(positions)
    if len(positions) >= _NUMPY_MIN_POSITIONS:
        np = get_numpy()
        if np is not None:
            coarse = (np.asarray(positions, dtype=np.int64) - 1) // factor + 1
            keep = np.empty(len(coarse), dtype=bool)
            keep[0] = True
            np.not_equal(coarse[1:], coarse[:-1], out=keep[1:])
            folded_arr = coarse[keep]
            if n_granules is not None:
                folded_arr = folded_arr[folded_arr <= n_granules]
            return folded_arr.tolist()
    folded: list[int] = []
    for position in positions:
        coarse = (position - 1) // factor + 1
        if n_granules is not None and coarse > n_granules:
            break
        if not folded or folded[-1] != coarse:
            folded.append(coarse)
    return folded


class SupportSet:
    """Common interface of both support-set representations.

    Instances behave like immutable sorted sequences of granule positions:
    they are sized, iterable (ascending), indexable, and compare equal to
    plain lists/tuples with the same positions.  Subclasses implement the
    physical storage and the intersection.
    """

    __slots__ = ()

    #: Name of the physical representation ("bitset" / "list").
    backend = "abstract"

    def positions(self) -> tuple[int, ...]:
        """The positions as an ascending tuple (materializing if needed)."""
        raise NotImplementedError

    def intersect(self, other: SupportLike) -> "SupportSet":
        """The intersection, in this set's representation."""
        raise NotImplementedError

    def coarsen(self, factor: int, n_granules: int | None = None) -> "SupportSet":
        """The support set's image under a ``factor``-coarser sequence mapping.

        A coarse granule is in the folded set iff it covers at least one
        fine granule of this set.  For *events* the fold is exact: an
        event occurs in a coarse granule iff it occurs in one of the
        covered fine granules, so folding a fine event support yields the
        support the coarse-level DSEQ scan would recompute.  ``n_granules``
        drops coarse positions beyond the mapped database's length (the
        trailing partial block of Def. 3.3).
        """
        raise NotImplementedError

    def __and__(self, other: SupportLike) -> "SupportSet":
        """``a & b`` -- operator alias of :meth:`intersect`."""
        return self.intersect(other)

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions())

    def __getitem__(self, index):
        """Indexing and slicing over the materialized positions."""
        result = self.positions()[index]
        return list(result) if isinstance(index, slice) else result

    def __contains__(self, position: int) -> bool:
        return position in self.positions()

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other) -> bool:
        """Equal to any SupportSet / list / tuple with the same positions."""
        if isinstance(other, SupportSet):
            return self.positions() == other.positions()
        if isinstance(other, (list, tuple, range)):
            return list(self.positions()) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.positions())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({list(self.positions())!r})"


class BitsetSupportSet(SupportSet):
    """Support set packed into one Python big int.

    Bit ``p`` of ``bits`` is set iff granule position ``p`` belongs to the
    set.  Positions are 1-based (bit 0 is never set by the miners, but the
    representation does not care).  Intersection and cardinality never
    materialize the positions; iteration does, once, and caches the tuple.
    """

    __slots__ = ("bits", "_cached")

    backend = BACKEND_BITSET

    def __init__(self, bits: int = 0):
        if bits < 0:
            raise ConfigError("support bitset cannot be negative")
        self.bits = bits
        self._cached: tuple[int, ...] | None = None

    @classmethod
    def from_positions(cls, positions: Iterable[int]) -> "BitsetSupportSet":
        """Pack an iterable of non-negative positions into a bitset."""
        return cls(_pack_bits(positions))

    def positions(self) -> tuple[int, ...]:
        if self._cached is None:
            self._cached = tuple(bit_positions(self.bits))
        return self._cached

    def intersect(self, other: SupportLike) -> "BitsetSupportSet":
        if isinstance(other, BitsetSupportSet):
            return BitsetSupportSet(self.bits & other.bits)
        return BitsetSupportSet(self.bits & _as_bits(other))

    def coarsen(self, factor: int, n_granules: int | None = None) -> "BitsetSupportSet":
        return BitsetSupportSet(coarsen_bits(self.bits, factor, n_granules))

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __contains__(self, position: int) -> bool:
        return position >= 0 and (self.bits >> position) & 1 == 1

    def __bool__(self) -> bool:
        return self.bits != 0

    def __reduce__(self):
        return (BitsetSupportSet, (self.bits,))


class ListSupportSet(SupportSet):
    """Support set stored as the classical ascending position tuple."""

    __slots__ = ("_positions",)

    backend = BACKEND_LIST

    def __init__(self, positions: Iterable[int] = ()):
        self._positions = tuple(positions)

    @classmethod
    def from_positions(cls, positions: Iterable[int]) -> "ListSupportSet":
        """Wrap an iterable of positions, normalizing to ascending unique.

        The miners always hand in ascending runs (the common case costs
        one linear scan); arbitrary iterables are sorted and deduplicated
        so both backends represent the same logical set.
        """
        ordered = tuple(positions)
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            ordered = tuple(sorted(set(ordered)))
        return cls(ordered)

    def positions(self) -> tuple[int, ...]:
        return self._positions

    def intersect(self, other: SupportLike) -> "ListSupportSet":
        return ListSupportSet(
            intersect_sorted(list(self._positions), list(as_positions(other)))
        )

    def coarsen(self, factor: int, n_granules: int | None = None) -> "ListSupportSet":
        return ListSupportSet(coarsen_positions(self._positions, factor, n_granules))

    def __len__(self) -> int:
        return len(self._positions)

    def __reduce__(self):
        return (ListSupportSet, (self._positions,))


_BACKEND_CLASSES = {
    BACKEND_BITSET: BitsetSupportSet,
    BACKEND_LIST: ListSupportSet,
}

#: Process-wide default representation (see :func:`set_default_backend`).
_DEFAULT_BACKEND = BACKEND_BITSET


def _pack_bits(positions: Iterable[int]) -> int:
    """Pack non-negative positions into a big-int bitmask.

    Sets bits in a flat ``bytearray`` (one in-place byte OR per position)
    and converts once with ``int.from_bytes`` -- linear in the mask
    length, where per-position ``bits |= 1 << p`` copies the growing big
    int every time.
    """
    ordered = positions if isinstance(positions, (list, tuple)) else list(positions)
    if not ordered:
        return 0
    top = max(ordered)
    if top < 0 or min(ordered) < 0:
        raise ConfigError("support positions cannot be negative")
    packed = bytearray((top >> 3) + 1)
    for position in ordered:
        packed[position >> 3] |= 1 << (position & 7)
    return int.from_bytes(packed, "little")


def _as_bits(support: SupportLike) -> int:
    """The big-int bitmask of any support-like value."""
    if isinstance(support, BitsetSupportSet):
        return support.bits
    return _pack_bits(as_positions(support))


def as_positions(support: SupportLike) -> Sequence[int]:
    """A sorted position sequence view of any support-like value.

    ``SupportSet`` inputs materialize (cached); plain sequences pass
    through untouched, so pre-existing list-based callers pay nothing.
    """
    if isinstance(support, SupportSet):
        return support.positions()
    return support


def as_support_list(support: SupportLike) -> list[int]:
    """A plain ``list[int]`` copy of any support-like value."""
    return list(as_positions(support))


def validate_backend(backend: str) -> str:
    """Return ``backend`` if known, raise :class:`ConfigError` otherwise."""
    if backend not in _BACKEND_CLASSES:
        raise ConfigError(
            f"unknown support backend {backend!r}; choose from {SUPPORT_BACKENDS}"
        )
    return backend


def make_support_set(positions: Iterable[int], backend: str | None = None) -> SupportSet:
    """Build a support set in the requested (or default) representation."""
    backend = validate_backend(backend or _DEFAULT_BACKEND)
    return _BACKEND_CLASSES[backend].from_positions(positions)


def coerce_support_set(support: SupportLike, backend: str | None = None) -> SupportSet:
    """Return ``support`` unchanged when already in the right representation,
    otherwise re-pack it into the requested (or default) backend."""
    backend = validate_backend(backend or _DEFAULT_BACKEND)
    if isinstance(support, SupportSet) and support.backend == backend:
        return support
    return make_support_set(as_positions(support), backend)


def default_backend() -> str:
    """The process-wide default support representation."""
    return _DEFAULT_BACKEND


def set_default_backend(backend: str) -> str:
    """Set the process-wide default representation; returns the old one.

    The harness uses this to flip whole experiment runs between the bitset
    and the sorted-list engine without threading a parameter through every
    experiment function.
    """
    global _DEFAULT_BACKEND
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = validate_backend(backend)
    return previous
