"""Columnar instance index for the step-2.2 pattern-growth hot path.

The step-2.2 kernels (pair enumeration and group extension, Sec. IV-D)
used to relate :class:`~repro.events.event.EventInstance` objects pair by
pair: one ``relation_of_pair`` call, two ``sort_key()`` tuples, and a
fresh ``TemporalPattern`` per accepted pair.  On dense granules that is
almost pure interpreter overhead -- the arithmetic behind a relation
check is four integer comparisons.

This module provides the columnar substitute:

* :class:`InstanceColumn` -- the per ``(event, granule)`` instance table:
  parallel ``starts`` / ``ends`` position tuples sorted chronologically
  (by ``(start, -end)``), plus the instance objects themselves for
  decoding.  Built once per mining job per process and cached on
  :class:`~repro.core.hlh.HLH1` (see :meth:`HLH1.column_of`); the cache
  never crosses the executor boundary -- worker processes rebuild their
  own columns lazily from the broadcast ``GH`` tables.
* **Flyweight interning** for :class:`~repro.core.pattern.Triple` and
  :class:`~repro.core.pattern.TemporalPattern`: the kernels produce one
  object per *distinct* pattern per process instead of one per accepted
  instance pair, killing the ``__post_init__`` validation churn and
  making pattern hashing hit identical objects.
* **Compact assignment encoding**: inside the mining kernels a realizing
  assignment is a tuple of *column indices* parallel to the pattern's
  chronologically ordered ``events`` -- ``encoded[i]`` indexes the
  instance of ``pattern.events[i]`` in its granule column.  Index tuples
  are what ``GH_k`` stores and what the pickled
  :class:`~repro.core.stpm.GroupOutcome` payloads ship back from pool
  workers; :func:`decode_assignment` rematerializes the instance tuple
  wherever a human-facing view needs one.

The sweep-join kernels themselves live in :mod:`repro.core.stpm`
(:func:`~repro.core.stpm.collect_pair_patterns` /
:func:`~repro.core.stpm.extend_group_patterns`) so the batch and
streaming miners keep sharing one implementation; the pre-index
reference kernels are preserved in :mod:`repro.core._kernel_reference`
for parity tests and the EXT5 benchmark.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.pattern import TemporalPattern, Triple
from repro.events.event import EventInstance
from repro.exceptions import ConfigError, MiningError

#: Kernel names accepted wherever the step-2.2 implementation can be chosen.
KERNEL_SWEEP = "sweep"
KERNEL_REFERENCE = "reference"
STEP2_KERNELS = (KERNEL_SWEEP, KERNEL_REFERENCE)

#: A realizing assignment encoded as column indices parallel to the
#: pattern's chronological ``events`` tuple.
EncodedAssignment = tuple[int, ...]


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if known, raise :class:`ConfigError` otherwise."""
    if kernel not in STEP2_KERNELS:
        raise ConfigError(
            f"unknown step-2.2 kernel {kernel!r}; choose from {STEP2_KERNELS}"
        )
    return kernel


def _sort_key(instance: EventInstance) -> tuple[int, int]:
    """Chronological column order: by start, longer-first on ties.

    Within one column every instance carries the same event key, so the
    event tiebreaker of :meth:`EventInstance.sort_key` is irrelevant.
    """
    return (instance.start, -instance.end)


class InstanceColumn:
    """Start-sorted compact instance table of one ``(event, granule)``.

    ``starts`` and ``ends`` are parallel tuples of inclusive fine-granule
    bounds in chronological order; ``instances`` holds the corresponding
    :class:`EventInstance` objects for decoding.  Instances of one event
    inside one granule are disjoint runs, so both columns are strictly
    ascending -- the monotonicity the sweep-join two-pointer walks rely
    on.
    """

    __slots__ = ("starts", "ends", "instances")

    def __init__(
        self,
        starts: tuple[int, ...],
        ends: tuple[int, ...],
        instances: tuple[EventInstance, ...],
    ):
        self.starts = starts
        self.ends = ends
        self.instances = instances

    @classmethod
    def from_instances(cls, instances: Sequence[EventInstance]) -> "InstanceColumn":
        """Build the column, re-sorting defensively if the input is not
        already in chronological order (the sequence layer emits sorted
        runs; hand-built HLH structures may not).

        After sorting, the ends column must be non-decreasing -- i.e. no
        instance may *nest* inside another.  The run grouping of
        Def. 3.10 guarantees this (same-event instances in a granule are
        disjoint), and the sweep kernels' bulk-Follows bounds are only
        sound under it, so a hand-built structure that violates it is
        rejected loudly instead of silently misclassifying relations.
        """
        ordered = tuple(instances)
        if any(
            _sort_key(a) > _sort_key(b) for a, b in zip(ordered, ordered[1:])
        ):
            ordered = tuple(sorted(ordered, key=_sort_key))
        ends = tuple(instance.end for instance in ordered)
        if any(a > b for a, b in zip(ends, ends[1:])):
            raise MiningError(
                "instance column holds nested instances (ends not "
                f"monotone): {ordered!r}; per-event granule instances "
                "must be disjoint runs (Def. 3.10)"
            )
        return cls(
            tuple(instance.start for instance in ordered),
            ends,
            ordered,
        )

    def __len__(self) -> int:
        return len(self.starts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstanceColumn({list(zip(self.starts, self.ends))!r})"


#: The shared empty column (events missing from a granule).
EMPTY_COLUMN = InstanceColumn((), (), ())


# ---------------------------------------------------------------------------
# Flyweight interning of triples and patterns
# ---------------------------------------------------------------------------

#: Process-wide flyweight caches.  Patterns and triples are immutable
#: value objects compared by value everywhere, so the interning is a
#: best-effort optimization: sharing across jobs is safe, and losing an
#: entry merely re-constructs an equal object.  Batch jobs drop the
#: caches at ``executor_scope`` exit (a live job's interned objects are
#: all referenced by its HLH structures anyway); for paths with no job
#: scope -- the long-lived streaming miner -- :data:`_INTERN_CACHE_LIMIT`
#: hard-bounds each cache, resetting it when the distinct-identity
#: population outgrows the limit.  Under the threads executor concurrent
#: misses may race benignly: both threads build equal objects and the
#: last insert wins.
_TRIPLE_CACHE: dict[tuple[str, str, str], Triple] = {}
_PATTERN_CACHE: dict[tuple[tuple[str, ...], tuple[Triple, ...]], TemporalPattern] = {}

#: Distinct identities a flyweight cache may hold before it is reset.
_INTERN_CACHE_LIMIT = 1 << 17


def intern_triple(relation: str, first: str, second: str) -> Triple:
    """The one shared :class:`Triple` for ``(relation, first, second)``."""
    key = (relation, first, second)
    triple = _TRIPLE_CACHE.get(key)
    if triple is None:
        if len(_TRIPLE_CACHE) >= _INTERN_CACHE_LIMIT:
            _TRIPLE_CACHE.clear()
        triple = _TRIPLE_CACHE[key] = Triple(relation, first, second)
    return triple


def intern_pattern(
    events: tuple[str, ...], triples: tuple[Triple, ...]
) -> TemporalPattern:
    """The one shared :class:`TemporalPattern` for ``(events, triples)``.

    Construction (and its ``__post_init__`` validation) runs once per
    distinct pattern per process; every later request is two dict probes.
    """
    key = (events, triples)
    pattern = _PATTERN_CACHE.get(key)
    if pattern is None:
        if len(_PATTERN_CACHE) >= _INTERN_CACHE_LIMIT:
            _PATTERN_CACHE.clear()
        pattern = _PATTERN_CACHE[key] = TemporalPattern(events, triples)
    return pattern


def intern_pair_pattern(relation: str, first: str, second: str) -> TemporalPattern:
    """The interned 2-event pattern ``(first, second)`` under ``relation``."""
    triple = intern_triple(relation, first, second)
    return intern_pattern((first, second), (triple,))


def clear_intern_caches() -> None:
    """Drop the flyweight caches (test isolation / long-lived services)."""
    _TRIPLE_CACHE.clear()
    _PATTERN_CACHE.clear()


# ---------------------------------------------------------------------------
# Encoded assignment decoding
# ---------------------------------------------------------------------------


def decode_assignment(
    hlh1, events: Sequence[str], granule: int, encoded: Iterable[int]
) -> tuple[EventInstance, ...]:
    """Rematerialize an encoded assignment into its instance tuple.

    ``events`` is the pattern's chronological event tuple; ``encoded[i]``
    indexes the instance of ``events[i]`` in its ``(event, granule)``
    column.  The result is chronologically ordered by construction.
    """
    return tuple(
        hlh1.column_of(event, granule).instances[index]
        for event, index in zip(events, encoded)
    )
