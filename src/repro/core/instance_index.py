"""Columnar instance index for the step-2.2 pattern-growth hot path.

The step-2.2 kernels (pair enumeration and group extension, Sec. IV-D)
used to relate :class:`~repro.events.event.EventInstance` objects pair by
pair: one ``relation_of_pair`` call, two ``sort_key()`` tuples, and a
fresh ``TemporalPattern`` per accepted pair.  On dense granules that is
almost pure interpreter overhead -- the arithmetic behind a relation
check is four integer comparisons.

This module provides the columnar substitute:

* :class:`InstanceColumn` -- the per ``(event, granule)`` instance table:
  parallel ``starts`` / ``ends`` position tuples sorted chronologically
  (by ``(start, -end)``), plus the instance objects themselves for
  decoding.  Built once per mining job per process and cached on
  :class:`~repro.core.hlh.HLH1` (see :meth:`HLH1.column_of`); the cache
  never crosses the executor boundary -- worker processes rebuild their
  own columns lazily from the broadcast ``GH`` tables.
* **Flyweight interning** for :class:`~repro.core.pattern.Triple` and
  :class:`~repro.core.pattern.TemporalPattern`: the kernels produce one
  object per *distinct* pattern per process instead of one per accepted
  instance pair, killing the ``__post_init__`` validation churn and
  making pattern hashing hit identical objects.
* **Compact assignment encoding**: inside the mining kernels a realizing
  assignment is a tuple of *column indices* parallel to the pattern's
  chronologically ordered ``events`` -- ``encoded[i]`` indexes the
  instance of ``pattern.events[i]`` in its granule column.  Index tuples
  are what ``GH_k`` stores and what the pickled
  :class:`~repro.core.stpm.GroupOutcome` payloads ship back from pool
  workers; :func:`decode_assignment` rematerializes the instance tuple
  wherever a human-facing view needs one.

The sweep-join kernels themselves live in :mod:`repro.core.stpm`
(:func:`~repro.core.stpm.collect_pair_patterns` /
:func:`~repro.core.stpm.extend_group_patterns`) so the batch and
streaming miners keep sharing one implementation; the pre-index
reference kernels are preserved in :mod:`repro.core._kernel_reference`
for parity tests and the EXT5 benchmark.
"""

from __future__ import annotations

from array import array
from itertools import repeat
from typing import Iterable, Sequence

from repro.core.pattern import TemporalPattern, Triple
from repro.events.event import EventInstance
from repro.exceptions import ConfigError, MiningError

#: Kernel names accepted wherever the step-2.2 implementation can be chosen.
KERNEL_SWEEP = "sweep"
KERNEL_REFERENCE = "reference"
KERNEL_ARRAY = "array"
STEP2_KERNELS = (KERNEL_ARRAY, KERNEL_SWEEP, KERNEL_REFERENCE)

#: A realizing assignment encoded as column indices parallel to the
#: pattern's chronological ``events`` tuple.
EncodedAssignment = tuple[int, ...]


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if known, raise :class:`ConfigError` otherwise."""
    if kernel not in STEP2_KERNELS:
        raise ConfigError(
            f"unknown step-2.2 kernel {kernel!r}; choose from {STEP2_KERNELS}"
        )
    return kernel


#: Process-wide default step-2.2 kernel (see :func:`set_default_kernel`).
#: ``array`` is the vectorized v2 engine (numpy when available, the
#: pure-Python machine-word path otherwise -- see
#: :func:`repro.core.config.get_numpy`); ``sweep`` is the PR 5 tuple
#: sweep; ``reference`` the pre-index object-at-a-time loops.
_DEFAULT_KERNEL = KERNEL_ARRAY


def default_kernel() -> str:
    """The process-wide default step-2.2 kernel."""
    return _DEFAULT_KERNEL


def set_default_kernel(kernel: str) -> str:
    """Set the process-wide default step-2.2 kernel; returns the old one.

    The harness uses this to flip whole experiment runs between kernels
    (CLI ``--kernel``) without threading a parameter through every
    experiment function.  All kernels produce equivalent results.
    """
    global _DEFAULT_KERNEL
    previous = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = validate_kernel(kernel)
    return previous


def _sort_key(instance: EventInstance) -> tuple[int, int]:
    """Chronological column order: by start, longer-first on ties.

    Within one column every instance carries the same event key, so the
    event tiebreaker of :meth:`EventInstance.sort_key` is irrelevant.
    """
    return (instance.start, -instance.end)


class InstanceColumn:
    """Start-sorted compact instance table of one ``(event, granule)``.

    ``starts_arr`` and ``ends_arr`` are parallel ``array('q')`` buffers of
    inclusive fine-granule bounds in chronological order -- contiguous
    machine-word storage the vectorized array kernels wrap zero-copy
    (``numpy.frombuffer``) and the pure-Python paths index directly.
    ``instances`` holds the corresponding :class:`EventInstance` objects
    for decoding.  The classic ``starts`` / ``ends`` *tuples* remain
    available as lazy views for existing callers (the PR 5 sweep kernel,
    tests, reporting) and are materialized at most once per column.

    Instances of one event inside one granule are disjoint runs, so both
    columns are strictly ascending -- the monotonicity the sweep-join
    two-pointer walks and the bulk-Follows boundary arithmetic rely on.
    """

    __slots__ = ("starts_arr", "ends_arr", "instances", "_starts", "_ends")

    def __init__(
        self,
        starts: Iterable[int],
        ends: Iterable[int],
        instances: tuple[EventInstance, ...],
    ):
        self.starts_arr = starts if isinstance(starts, array) else array("q", starts)
        self.ends_arr = ends if isinstance(ends, array) else array("q", ends)
        self.instances = instances
        self._starts: tuple[int, ...] | None = None
        self._ends: tuple[int, ...] | None = None

    @property
    def starts(self) -> tuple[int, ...]:
        """The start bounds as a tuple (lazy view over ``starts_arr``)."""
        if self._starts is None:
            self._starts = tuple(self.starts_arr)
        return self._starts

    @property
    def ends(self) -> tuple[int, ...]:
        """The end bounds as a tuple (lazy view over ``ends_arr``)."""
        if self._ends is None:
            self._ends = tuple(self.ends_arr)
        return self._ends

    @classmethod
    def from_instances(cls, instances: Sequence[EventInstance]) -> "InstanceColumn":
        """Build the column, re-sorting defensively if the input is not
        already in chronological order (the sequence layer emits sorted
        runs; hand-built HLH structures may not).

        After sorting, the ends column must be non-decreasing -- i.e. no
        instance may *nest* inside another.  The run grouping of
        Def. 3.10 guarantees this (same-event instances in a granule are
        disjoint), and the sweep kernels' bulk-Follows bounds are only
        sound under it, so a hand-built structure that violates it is
        rejected loudly -- naming the offending instance -- instead of
        silently misclassifying relations.
        """
        ordered = tuple(instances)
        if any(
            _sort_key(a) > _sort_key(b) for a, b in zip(ordered, ordered[1:])
        ):
            ordered = tuple(sorted(ordered, key=_sort_key))
        ends = array("q", (instance.end for instance in ordered))
        for index in range(1, len(ends)):
            if ends[index - 1] > ends[index]:
                raise MiningError(
                    f"instance column holds nested instances: instance "
                    f"#{index} {ordered[index]!r} nests inside "
                    f"#{index - 1} {ordered[index - 1]!r} (ends not "
                    "monotone); per-event granule instances must be "
                    "disjoint runs (Def. 3.10)"
                )
        return cls(
            array("q", (instance.start for instance in ordered)),
            ends,
            ordered,
        )

    def __len__(self) -> int:
        return len(self.starts_arr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstanceColumn({list(zip(self.starts_arr, self.ends_arr))!r})"


#: The shared empty column (events missing from a granule).
EMPTY_COLUMN = InstanceColumn((), (), ())


# ---------------------------------------------------------------------------
# Lazy assignment sequences (implicit bulk-Follows blocks)
# ---------------------------------------------------------------------------

#: Block kinds of :class:`LazyAssignments`.  ``PAIRS`` is a materialized
#: run of encoded pairs; ``BLOCK_BA`` holds per-``i`` head boundaries
#: (``(j, i)`` for every ``j < heads[i]`` -- the bulk "b wholly before a"
#: Follows zone); ``BLOCK_AB`` holds per-``i`` tail boundaries against a
#: column of length ``n`` (``(i, j)`` for every ``tails[i] <= j < n``).
_BLOCK_PAIRS = 0
_BLOCK_BA = 1
_BLOCK_AB = 2


class LazyAssignments:
    """Encoded pair assignments with implicit bulk-Follows zones.

    The step-2.2 pair kernels emit two kinds of accepted pairs: a *near
    window* that had to be classified pair by pair, and *bulk zones*
    where every pair is an unconditional Follows.  On dense granules the
    bulk zones are almost the whole instance product, and eagerly
    expanding them into ``(i, j)`` tuples is the dominant cost of pair
    enumeration -- interpreter-built tuples nobody may ever read (the
    ``GH_2`` rows of a non-candidate pattern, or any run capped at
    ``max_pattern_length = 2``).

    This sequence keeps the bulk zones *implicit*: a zone is stored as
    its per-instance boundary list (``O(n)`` integers for ``O(n^2)``
    pairs) and only expanded -- once, cached -- when somebody actually
    iterates the assignments (group extension, decoding, reporting,
    parity tests).  It quacks like the ``list[tuple[int, int]]`` the
    sweep kernel produces: iteration, ``len``, indexing, equality, and
    pickling all see the expanded pairs; pickling ships the compact
    blocks when the sequence was never expanded, so pool workers hand
    dense ``GH_2`` tables back to the parent without serializing the
    product either.
    """

    __slots__ = ("_blocks", "_items", "_length")

    def __init__(self) -> None:
        self._blocks: list | None = []
        self._items: list | None = None
        self._length = 0

    # -- kernel-side producers ------------------------------------------

    def append(self, pair) -> None:
        """Append one classified near-window pair."""
        if self._items is not None:
            self._items.append(pair)
        else:
            blocks = self._blocks
            if blocks and blocks[-1][0] == _BLOCK_PAIRS:
                blocks[-1][1].append(pair)
            else:
                blocks.append((_BLOCK_PAIRS, [pair]))
        self._length += 1

    def extend(self, pairs) -> None:
        """Append a run of classified near-window pairs."""
        if self._items is not None:
            before = len(self._items)
            self._items.extend(pairs)
            self._length += len(self._items) - before
            return
        blocks = self._blocks
        if blocks and blocks[-1][0] == _BLOCK_PAIRS:
            run = blocks[-1][1]
        else:
            run = []
            blocks.append((_BLOCK_PAIRS, run))
        before = len(run)
        run.extend(pairs)
        self._length += len(run) - before

    def add_bulk_before(self, heads, count: int) -> None:
        """Record the bulk ``(j, i) for j < heads[i]`` Follows zone."""
        if count <= 0:
            return
        if self._items is not None:
            items = self._items
            for i, head in enumerate(heads):
                if head:
                    items.extend(zip(range(head), repeat(i)))
        else:
            self._blocks.append((_BLOCK_BA, heads))
        self._length += count

    def add_bulk_after(self, tails, n: int, count: int) -> None:
        """Record the bulk ``(i, j) for tails[i] <= j < n`` Follows zone."""
        if count <= 0:
            return
        if self._items is not None:
            items = self._items
            for i, tail in enumerate(tails):
                if tail < n:
                    items.extend(zip(repeat(i), range(tail, n)))
        else:
            self._blocks.append((_BLOCK_AB, tails, n))
        self._length += count

    # -- consumer-side sequence protocol --------------------------------

    def _materialize(self) -> list:
        """Expand the blocks into the pair list, once."""
        items: list = []
        for block in self._blocks:
            kind = block[0]
            if kind == _BLOCK_PAIRS:
                items.extend(block[1])
            elif kind == _BLOCK_BA:
                for i, head in enumerate(block[1]):
                    if head:
                        items.extend(zip(range(head), repeat(i)))
            else:
                n = block[2]
                for i, tail in enumerate(block[1]):
                    if tail < n:
                        items.extend(zip(repeat(i), range(tail, n)))
        self._items = items
        self._blocks = None
        return items

    def __iter__(self):
        items = self._items
        if items is None:
            items = self._materialize()
        return iter(items)

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        items = self._items
        if items is None:
            items = self._materialize()
        return items[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyAssignments):
            if self._length != other._length:
                return False
            other = list(other)
        elif isinstance(other, (list, tuple)):
            other = list(other)
        else:
            return NotImplemented
        items = self._items
        if items is None:
            items = self._materialize()
        return items == other

    __hash__ = None  # mutable sequence, like list

    def sort(self, **kwargs) -> None:
        items = self._items
        if items is None:
            items = self._materialize()
        items.sort(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._items is None:
            return f"LazyAssignments(<{self._length} pairs, unexpanded>)"
        return f"LazyAssignments({self._items!r})"

    def __reduce__(self):
        # Ship compact blocks while unexpanded (pool workers return
        # dense GH2 tables without serializing the instance product);
        # an expanded sequence pickles its plain item list.
        if self._items is None:
            return (_rebuild_lazy_assignments, (self._blocks, None, self._length))
        return (_rebuild_lazy_assignments, (None, self._items, self._length))


def _rebuild_lazy_assignments(blocks, items, length) -> LazyAssignments:
    """Pickle reconstructor of :class:`LazyAssignments`."""
    rebuilt = LazyAssignments()
    rebuilt._blocks = blocks
    rebuilt._items = items
    rebuilt._length = length
    return rebuilt


# ---------------------------------------------------------------------------
# Flyweight interning of triples and patterns
# ---------------------------------------------------------------------------

#: Process-wide flyweight caches.  Patterns and triples are immutable
#: value objects compared by value everywhere, so the interning is a
#: best-effort optimization: sharing across jobs is safe, and losing an
#: entry merely re-constructs an equal object.  Batch jobs drop the
#: caches at ``executor_scope`` exit (a live job's interned objects are
#: all referenced by its HLH structures anyway); for paths with no job
#: scope -- the long-lived streaming miner -- :data:`_INTERN_CACHE_LIMIT`
#: hard-bounds each cache, resetting it when the distinct-identity
#: population outgrows the limit.  Under the threads executor concurrent
#: misses may race benignly: both threads build equal objects and the
#: last insert wins.
_TRIPLE_CACHE: dict[tuple[str, str, str], Triple] = {}
_PATTERN_CACHE: dict[tuple[tuple[str, ...], tuple[Triple, ...]], TemporalPattern] = {}

#: Distinct identities a flyweight cache may hold before it is reset.
_INTERN_CACHE_LIMIT = 1 << 17


def intern_triple(relation: str, first: str, second: str) -> Triple:
    """The one shared :class:`Triple` for ``(relation, first, second)``."""
    key = (relation, first, second)
    triple = _TRIPLE_CACHE.get(key)
    if triple is None:
        if len(_TRIPLE_CACHE) >= _INTERN_CACHE_LIMIT:
            _TRIPLE_CACHE.clear()
        triple = _TRIPLE_CACHE[key] = Triple(relation, first, second)
    return triple


def intern_pattern(
    events: tuple[str, ...], triples: tuple[Triple, ...]
) -> TemporalPattern:
    """The one shared :class:`TemporalPattern` for ``(events, triples)``.

    Construction (and its ``__post_init__`` validation) runs once per
    distinct pattern per process; every later request is two dict probes.
    """
    key = (events, triples)
    pattern = _PATTERN_CACHE.get(key)
    if pattern is None:
        if len(_PATTERN_CACHE) >= _INTERN_CACHE_LIMIT:
            _PATTERN_CACHE.clear()
        pattern = _PATTERN_CACHE[key] = TemporalPattern(events, triples)
    return pattern


def intern_pair_pattern(relation: str, first: str, second: str) -> TemporalPattern:
    """The interned 2-event pattern ``(first, second)`` under ``relation``."""
    triple = intern_triple(relation, first, second)
    return intern_pattern((first, second), (triple,))


def clear_intern_caches() -> None:
    """Drop the flyweight caches (test isolation / long-lived services)."""
    _TRIPLE_CACHE.clear()
    _PATTERN_CACHE.clear()


# ---------------------------------------------------------------------------
# Encoded assignment decoding
# ---------------------------------------------------------------------------


def decode_assignment(
    hlh1, events: Sequence[str], granule: int, encoded: Iterable[int]
) -> tuple[EventInstance, ...]:
    """Rematerialize an encoded assignment into its instance tuple.

    ``events`` is the pattern's chronological event tuple; ``encoded[i]``
    indexes the instance of ``events[i]`` in its ``(event, granule)``
    column.  The result is chronologically ordered by construction.
    """
    return tuple(
        hlh1.column_of(event, granule).instances[index]
        for event, index in zip(events, encoded)
    )
