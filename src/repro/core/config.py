"""Mining parameters (paper Sec. III-E and Table VI).

The FreqSTPfTS problem is governed by four user thresholds:

* ``max_period``  -- maximal period between two consecutive granules of a
  near support set (Def. 3.13);
* ``min_density`` -- minimal number of granules a near support set needs to
  be a season (Def. 3.14);
* ``dist_interval = [dist_min, dist_max]`` -- allowed distance between two
  consecutive seasons (Def. 3.15);
* ``min_season``  -- minimal number of seasons of a frequent pattern.

The paper's experiments express maxPeriod and minDensity as percentages of
``|DSEQ|`` (Table VI); :meth:`MiningParams.from_percentages` resolves those
to absolute granule counts.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

from repro.events.relations import RelationConfig
from repro.exceptions import ConfigError

# ---------------------------------------------------------------------------
# Compute-backend selection (numpy-optional kernels)
# ---------------------------------------------------------------------------

#: Compute backends of the array kernels: ``auto`` uses numpy when it is
#: importable, ``numpy`` requires it, ``python`` forces the pure-Python
#: machine-word fallback (always available, always equivalent).
COMPUTE_AUTO = "auto"
COMPUTE_NUMPY = "numpy"
COMPUTE_PYTHON = "python"
COMPUTE_BACKENDS = (COMPUTE_AUTO, COMPUTE_NUMPY, COMPUTE_PYTHON)

#: Environment override so spawned pool workers (and CI fallback legs)
#: inherit the selection without any in-process plumbing.
COMPUTE_ENV_VAR = "REPRO_COMPUTE"

_COMPUTE_BACKEND: str | None = None
#: The numpy module, ``None`` when unavailable/disabled, unset sentinel
#: while the import has not been attempted.
_NUMPY_MODULE = ...


def validate_compute_backend(backend: str) -> str:
    """Return ``backend`` if known, raise :class:`ConfigError` otherwise."""
    if backend not in COMPUTE_BACKENDS:
        raise ConfigError(
            f"unknown compute backend {backend!r}; choose from {COMPUTE_BACKENDS}"
        )
    return backend


def compute_backend() -> str:
    """The selected compute backend (``auto`` / ``numpy`` / ``python``).

    Resolution order: :func:`set_compute_backend`, then the
    ``REPRO_COMPUTE`` environment variable, then ``auto``.
    """
    if _COMPUTE_BACKEND is not None:
        return _COMPUTE_BACKEND
    return validate_compute_backend(os.environ.get(COMPUTE_ENV_VAR, COMPUTE_AUTO))


def set_compute_backend(backend: str | None) -> str | None:
    """Set the process-wide compute backend; returns the previous override.

    ``None`` clears the override (falling back to the environment /
    ``auto``).  The selection only affects *speed*: every array kernel has
    a pure-Python path producing identical results.
    """
    global _COMPUTE_BACKEND, _NUMPY_MODULE
    previous = _COMPUTE_BACKEND
    _COMPUTE_BACKEND = (
        validate_compute_backend(backend) if backend is not None else None
    )
    _NUMPY_MODULE = ...  # re-resolve on next use
    return previous


def get_numpy():
    """The numpy module when the selection allows it, else ``None``.

    ``python`` always returns ``None``; ``numpy`` raises
    :class:`ConfigError` when numpy is not importable; ``auto`` quietly
    falls back to ``None``.  The import is attempted once and cached.
    """
    global _NUMPY_MODULE
    backend = compute_backend()
    if backend == COMPUTE_PYTHON:
        return None
    if _NUMPY_MODULE is ...:
        try:
            import numpy
        except ImportError:
            numpy = None
        _NUMPY_MODULE = numpy
    if _NUMPY_MODULE is None and backend == COMPUTE_NUMPY:
        raise ConfigError(
            "compute backend 'numpy' requested but numpy is not importable; "
            "install numpy or select 'auto'/'python'"
        )
    return _NUMPY_MODULE


@dataclass(frozen=True)
class MiningParams:
    """Absolute-valued thresholds driving a mining run.

    Parameters
    ----------
    max_period:
        Maximal gap (in coarse granule positions) inside a season.
    min_density:
        Minimal granule count of a season.
    dist_interval:
        ``(dist_min, dist_max)`` between consecutive seasons, measured from
        the end of one season to the start of the next.
    min_season:
        Minimal number of seasons of a frequent seasonal pattern.
    relation:
        Tolerance settings for the Follows / Contains / Overlaps checks.
    max_pattern_length:
        Upper bound on the number of events per pattern (the ``h`` of the
        search-space analysis).  The search space is O(n^h 3^(h^2)); 3 is
        the paper's qualitative pattern length and our default.
    """

    max_period: int
    min_density: int
    dist_interval: tuple[int, int]
    min_season: int
    relation: RelationConfig = field(default_factory=RelationConfig)
    max_pattern_length: int = 3

    def __post_init__(self) -> None:
        if self.max_period < 1:
            raise ConfigError(f"max_period must be >= 1, got {self.max_period}")
        if self.min_density < 1:
            raise ConfigError(f"min_density must be >= 1, got {self.min_density}")
        dist_min, dist_max = self.dist_interval
        if dist_min < 0 or dist_max < dist_min:
            raise ConfigError(
                f"dist_interval needs 0 <= dist_min <= dist_max, got {self.dist_interval}"
            )
        if self.min_season < 1:
            raise ConfigError(f"min_season must be >= 1, got {self.min_season}")
        if self.max_pattern_length < 1:
            raise ConfigError(
                f"max_pattern_length must be >= 1, got {self.max_pattern_length}"
            )

    @property
    def dist_min(self) -> int:
        """Lower bound of the season distance interval."""
        return self.dist_interval[0]

    @property
    def dist_max(self) -> int:
        """Upper bound of the season distance interval."""
        return self.dist_interval[1]

    @classmethod
    def from_percentages(
        cls,
        n_granules: int,
        max_period_pct: float,
        min_density_pct: float,
        dist_interval: tuple[int, int],
        min_season: int,
        relation: RelationConfig | None = None,
        max_pattern_length: int = 3,
    ) -> "MiningParams":
        """Resolve Table VI style percentage thresholds to absolute counts.

        ``max_period_pct`` and ``min_density_pct`` are percentages of
        ``n_granules`` (e.g. ``0.4`` means 0.4%).  Values are rounded up
        and floored at 1 so tiny databases stay minable.
        """
        if n_granules < 1:
            raise ConfigError(f"n_granules must be >= 1, got {n_granules}")
        for label, pct in (("max_period_pct", max_period_pct), ("min_density_pct", min_density_pct)):
            if pct <= 0:
                raise ConfigError(f"{label} must be > 0, got {pct}")
        return cls(
            max_period=max(1, math.ceil(n_granules * max_period_pct / 100.0)),
            min_density=max(1, math.ceil(n_granules * min_density_pct / 100.0)),
            dist_interval=dist_interval,
            min_season=min_season,
            relation=relation or RelationConfig(),
            max_pattern_length=max_pattern_length,
        )

    def with_updates(self, **changes) -> "MiningParams":
        """A copy with the given fields replaced (parameter sweeps)."""
        return replace(self, **changes)
