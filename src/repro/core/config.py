"""Mining parameters (paper Sec. III-E and Table VI).

The FreqSTPfTS problem is governed by four user thresholds:

* ``max_period``  -- maximal period between two consecutive granules of a
  near support set (Def. 3.13);
* ``min_density`` -- minimal number of granules a near support set needs to
  be a season (Def. 3.14);
* ``dist_interval = [dist_min, dist_max]`` -- allowed distance between two
  consecutive seasons (Def. 3.15);
* ``min_season``  -- minimal number of seasons of a frequent pattern.

The paper's experiments express maxPeriod and minDensity as percentages of
``|DSEQ|`` (Table VI); :meth:`MiningParams.from_percentages` resolves those
to absolute granule counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.events.relations import RelationConfig
from repro.exceptions import ConfigError


@dataclass(frozen=True)
class MiningParams:
    """Absolute-valued thresholds driving a mining run.

    Parameters
    ----------
    max_period:
        Maximal gap (in coarse granule positions) inside a season.
    min_density:
        Minimal granule count of a season.
    dist_interval:
        ``(dist_min, dist_max)`` between consecutive seasons, measured from
        the end of one season to the start of the next.
    min_season:
        Minimal number of seasons of a frequent seasonal pattern.
    relation:
        Tolerance settings for the Follows / Contains / Overlaps checks.
    max_pattern_length:
        Upper bound on the number of events per pattern (the ``h`` of the
        search-space analysis).  The search space is O(n^h 3^(h^2)); 3 is
        the paper's qualitative pattern length and our default.
    """

    max_period: int
    min_density: int
    dist_interval: tuple[int, int]
    min_season: int
    relation: RelationConfig = field(default_factory=RelationConfig)
    max_pattern_length: int = 3

    def __post_init__(self) -> None:
        if self.max_period < 1:
            raise ConfigError(f"max_period must be >= 1, got {self.max_period}")
        if self.min_density < 1:
            raise ConfigError(f"min_density must be >= 1, got {self.min_density}")
        dist_min, dist_max = self.dist_interval
        if dist_min < 0 or dist_max < dist_min:
            raise ConfigError(
                f"dist_interval needs 0 <= dist_min <= dist_max, got {self.dist_interval}"
            )
        if self.min_season < 1:
            raise ConfigError(f"min_season must be >= 1, got {self.min_season}")
        if self.max_pattern_length < 1:
            raise ConfigError(
                f"max_pattern_length must be >= 1, got {self.max_pattern_length}"
            )

    @property
    def dist_min(self) -> int:
        """Lower bound of the season distance interval."""
        return self.dist_interval[0]

    @property
    def dist_max(self) -> int:
        """Upper bound of the season distance interval."""
        return self.dist_interval[1]

    @classmethod
    def from_percentages(
        cls,
        n_granules: int,
        max_period_pct: float,
        min_density_pct: float,
        dist_interval: tuple[int, int],
        min_season: int,
        relation: RelationConfig | None = None,
        max_pattern_length: int = 3,
    ) -> "MiningParams":
        """Resolve Table VI style percentage thresholds to absolute counts.

        ``max_period_pct`` and ``min_density_pct`` are percentages of
        ``n_granules`` (e.g. ``0.4`` means 0.4%).  Values are rounded up
        and floored at 1 so tiny databases stay minable.
        """
        if n_granules < 1:
            raise ConfigError(f"n_granules must be >= 1, got {n_granules}")
        for label, pct in (("max_period_pct", max_period_pct), ("min_density_pct", min_density_pct)):
            if pct <= 0:
                raise ConfigError(f"{label} must be > 0, got {pct}")
        return cls(
            max_period=max(1, math.ceil(n_granules * max_period_pct / 100.0)),
            min_density=max(1, math.ceil(n_granules * min_density_pct / 100.0)),
            dist_interval=dist_interval,
            min_season=min_season,
            relation=relation or RelationConfig(),
            max_pattern_length=max_pattern_length,
        )

    def with_updates(self, **changes) -> "MiningParams":
        """A copy with the given fields replaced (parameter sweeps)."""
        return replace(self, **changes)
