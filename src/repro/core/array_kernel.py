"""Array-backed step-2.2 kernels v2 (the ``"array"`` kernel).

The PR 5 sweep join made pattern growth columnar, but its columns were
pure-Python tuples walked by per-pair interpreted loops.  This module
rebuilds the data plane on the contiguous ``array('q')`` buffers of
:class:`~repro.core.instance_index.InstanceColumn`:

* **Bulk-Follows boundary arithmetic.**  For one ``(event_a, event_b)``
  column pair the epsilon-shifted bulk boundaries ``head[i]`` (every
  ``b`` wholly before ``a_i``) and ``tail[i]`` (every ``b`` wholly after
  ``a_i``) are computed for the *entire* column in one vectorized
  ``searchsorted`` per side -- no per-instance bisect, no two-pointer
  interpretation.
* **Batched near-window classification.**  The candidate pairs between
  the boundaries are classified in one call through
  :func:`~repro.events.relations.relation_masks_of_bounds` (the
  vectorized Table III core), and the verdicts land directly in the
  encoded-assignment ``(earlier_index, later_index)`` format that
  ``GH_k`` stores -- there is no per-pair Python dispatch in either the
  bulk or the near regime.
* **Verdict-row sweep for extension.**  :func:`array_extend_group_patterns`
  precomputes the bulk boundaries of every existing instance of a column
  against the new-event column in one ``searchsorted`` pair, builds each
  verdict row once (bulk prefix/suffix fills plus a classified near
  window), and -- new over the sweep kernel -- combines rows per
  assignment with O(1) *bulk-zone* handling: the index range where every
  slot verdict is a constant Follows is accepted (or rejected, when the
  Iterative Check already killed the triple) without touching the
  per-index loop.

Compute backend
---------------
The vectorized paths run on numpy when
:func:`repro.core.config.get_numpy` provides it; the pure-Python
machine-word fallback (same boundaries via an amortized two-pointer,
same batched semantics via C-level ``zip``/``range`` bulk generation) is
always available and produces identical results.  Selection is
process-wide (``REPRO_COMPUTE`` / ``set_compute_backend``); parity
across backends is pinned by the hypothesis suites.

Both kernels accept and produce exactly the structures of their sweep
counterparts in :mod:`repro.core.stpm`, so the batch miner, the
streaming miner, and every executor backend can dispatch to either
implementation interchangeably (``results_equivalent`` output).
"""

from __future__ import annotations

from itertools import repeat

from repro.core.config import get_numpy
from repro.core.hlh import HLH1, Assignment, HLHk
from repro.core.instance_index import (
    LazyAssignments,
    intern_pair_pattern,
    intern_pattern,
    intern_triple,
)
from repro.core.pattern import TemporalPattern, Triple, splice_triples
from repro.events.relations import CONTAINS, FOLLOWS, OVERLAPS, relation_masks_of_bounds
from repro.obs import counters as metrics

#: Verdict sentinel: "computed, and no (allowed) relation holds".  Local
#: to this module; rows never leave the kernel, so the sweep kernel's
#: sentinel and this one never meet.
_NO_RELATION = object()

#: Below this instance-product size the per-granule numpy path costs
#: more than it saves (fixed per-join array overhead vs an amortized
#: two-pointer walk); the pure-Python fallback handles small columns.
#: Crossover measured on the EXT5 dense regimes: columns shorter than
#: ~64-80 instances run faster through the scalar path.
_NUMPY_MIN_WORK = 4096


# ---------------------------------------------------------------------------
# Pair enumeration (step 2.2, k = 2)
# ---------------------------------------------------------------------------


def array_collect_pair_patterns(
    hlh1: HLH1,
    event_a: str,
    event_b: str,
    granules,
    relation,
    pattern_support: dict[TemporalPattern, list[int]],
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]],
) -> None:
    """Enumerate the related instance pairs of one event pair per granule.

    Drop-in replacement for :func:`repro.core.stpm.collect_pair_patterns`
    (same signature, same accumulation contract, equivalent output) built
    on whole-column boundary arithmetic and batched classification; see
    the module docstring for the mechanics.
    """
    epsilon = relation.epsilon
    min_overlap = relation.min_overlap
    np = get_numpy()
    entries: dict[tuple[str, str, str], tuple[list, dict]] = {}

    def _bucket(key: tuple[str, str, str], granule: int) -> list:
        """The assignment list of one pattern at one granule, marking the
        granule in the pattern's support on first use."""
        entry = entries.get(key)
        if entry is None:
            pattern = intern_pair_pattern(*key)
            entry = entries[key] = (
                pattern_support.setdefault(pattern, []),
                pattern_assignments.setdefault(pattern, {}),
            )
        support_list, by_granule = entry
        if not support_list or support_list[-1] != granule:
            support_list.append(granule)
        bucket = by_granule.get(granule)
        if bucket is None:
            bucket = by_granule[granule] = LazyAssignments()
        return bucket

    same = event_a == event_b
    for granule in granules:
        column_a = hlh1.column_of(event_a, granule)
        n_a = len(column_a.starts_arr)
        if n_a == 0:
            continue
        if same:
            if np is not None and n_a * n_a >= _NUMPY_MIN_WORK:
                _self_join_numpy(
                    np, column_a, event_a, granule,
                    epsilon, min_overlap, _bucket,
                )
            else:
                _self_join_python(
                    column_a, event_a, granule, epsilon, min_overlap, _bucket
                )
            continue
        column_b = hlh1.column_of(event_b, granule)
        n_b = len(column_b.starts_arr)
        if n_b == 0:
            continue
        if np is not None and n_a * n_b >= _NUMPY_MIN_WORK:
            _pair_join_numpy(
                np, column_a, column_b, event_a, event_b, granule,
                epsilon, min_overlap, _bucket,
            )
        else:
            _pair_join_python(
                column_a, column_b, event_a, event_b, granule,
                epsilon, min_overlap, _bucket,
            )


def _expand_ranges(np, lo, hi):
    """Flatten per-row index ranges ``[lo[i], hi[i])`` into parallel
    ``(i, j)`` arrays, row-major -- the bulk pair generator.

    ``lo`` / ``hi`` are equal-length integer arrays with ``hi >= lo``.
    Returns ``None`` when every range is empty.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return None
    i_rep = np.arange(len(counts)).repeat(counts)
    run_starts = counts.cumsum() - counts
    j_flat = np.arange(total) - (run_starts - lo).repeat(counts)
    return i_rep, j_flat


def _emit_classified(
    np, i_rep, j_flat, a_first, masks, event_a, event_b, granule, bucket_of
) -> None:
    """Route one classified near-window batch into its pattern buckets.

    ``a_first[p]`` says whether instance ``i`` of ``event_a`` is the
    chronologically earlier element of pair ``p``; encoded assignments
    are ``(earlier_index, later_index)``.
    """
    for rel, mask in masks:
        for first_is_a in (True, False):
            selected = mask & a_first if first_is_a else mask & ~a_first
            index = np.nonzero(selected)[0]
            if not len(index):
                continue
            ii = i_rep[index].tolist()
            jj = j_flat[index].tolist()
            if first_is_a:
                key = (rel, event_a, event_b)
                pairs = zip(ii, jj)
            else:
                key = (rel, event_b, event_a)
                pairs = zip(jj, ii)
            bucket_of(key, granule).extend(pairs)


def _pair_join_numpy(
    np, column_a, column_b, event_a, event_b, granule, epsilon, min_overlap, bucket_of
) -> None:
    """Vectorized distinct-event join of two columns at one granule."""
    sa = np.frombuffer(column_a.starts_arr, dtype=np.int64)
    ea = np.frombuffer(column_a.ends_arr, dtype=np.int64)
    sb = np.frombuffer(column_b.starts_arr, dtype=np.int64)
    eb = np.frombuffer(column_b.ends_arr, dtype=np.int64)
    n_b = len(sb)
    # Epsilon-shifted bulk-Follows boundaries for the whole column: b's
    # with ends_b[j] + eps < start_i are wholly before a_i (pure b -> a
    # Follows), b's with starts_b[j] >= end_i + eps + 1 wholly after
    # (pure a -> b Follows).  Both zones stay *implicit*: the boundary
    # lists go into the LazyAssignments blocks, no pair tuples built.
    head = eb.searchsorted(sa - (epsilon + 1), side="right")
    tail = np.maximum(sb.searchsorted(ea + (epsilon + 1), side="left"), head)
    before_total = int(head.sum())
    if before_total:
        bucket_of((FOLLOWS, event_b, event_a), granule).add_bulk_before(
            head.tolist(), before_total
        )
    after_total = len(sa) * n_b - int(tail.sum())
    if after_total:
        bucket_of((FOLLOWS, event_a, event_b), granule).add_bulk_after(
            tail.tolist(), n_b, after_total
        )
    metrics.inc("kernel.pairs.bulk", before_total + after_total)
    near = _expand_ranges(np, head, tail)
    if near is None:
        return
    i_rep, j_flat = near
    metrics.inc("kernel.pairs.near_classified", len(i_rep))
    s_i, e_i = sa[i_rep], ea[i_rep]
    s_j, e_j = sb[j_flat], eb[j_flat]
    a_first = (s_i < s_j) | (
        (s_i == s_j) & ((e_i > e_j) | ((e_i == e_j) & (event_a <= event_b)))
    )
    s_1 = np.where(a_first, s_i, s_j)
    e_1 = np.where(a_first, e_i, e_j)
    s_2 = np.where(a_first, s_j, s_i)
    e_2 = np.where(a_first, e_j, e_i)
    contains, follows, overlaps = relation_masks_of_bounds(
        np, s_1, e_1, s_2, e_2, epsilon, min_overlap
    )
    _emit_classified(
        np, i_rep, j_flat, a_first,
        ((CONTAINS, contains), (FOLLOWS, follows), (OVERLAPS, overlaps)),
        event_a, event_b, granule, bucket_of,
    )


def _self_join_numpy(
    np, column, event, granule, epsilon, min_overlap, bucket_of
) -> None:
    """Vectorized same-event join (distinct ordered pairs ``i < j``)."""
    starts = np.frombuffer(column.starts_arr, dtype=np.int64)
    ends = np.frombuffer(column.ends_arr, dtype=np.int64)
    n = len(starts)
    index = np.arange(n)
    # Same-event runs are disjoint, so i always precedes j > i; the only
    # boundary is the bulk i -> j Follows tail.
    tail = np.maximum(starts.searchsorted(ends + (epsilon + 1), side="left"), index + 1)
    after_total = n * n - int(tail.sum())
    if after_total:
        bucket_of((FOLLOWS, event, event), granule).add_bulk_after(
            tail.tolist(), n, after_total
        )
    metrics.inc("kernel.pairs.bulk", after_total)
    near = _expand_ranges(np, index + 1, tail)
    if near is None:
        return
    i_rep, j_flat = near
    metrics.inc("kernel.pairs.near_classified", len(i_rep))
    contains, follows, overlaps = relation_masks_of_bounds(
        np, starts[i_rep], ends[i_rep], starts[j_flat], ends[j_flat],
        epsilon, min_overlap,
    )
    for rel, mask in ((CONTAINS, contains), (FOLLOWS, follows), (OVERLAPS, overlaps)):
        selected = np.nonzero(mask)[0]
        if not len(selected):
            continue
        bucket_of((rel, event, event), granule).extend(
            zip(i_rep[selected].tolist(), j_flat[selected].tolist())
        )


def _pair_join_python(
    column_a, column_b, event_a, event_b, granule, epsilon, min_overlap, bucket_of
) -> None:
    """Pure-Python distinct-event join: amortized two-pointer boundaries
    feeding the same lazy bulk-Follows blocks as the numpy path, with a
    scalar classification loop over the near windows (the mandatory
    fallback, equivalent accumulation)."""
    starts_a, ends_a = column_a.starts, column_a.ends
    starts_b, ends_b = column_b.starts, column_b.ends
    n_a, n_b = len(starts_a), len(starts_b)
    follows_ab = (FOLLOWS, event_a, event_b)
    follows_ba = (FOLLOWS, event_b, event_a)
    buckets: dict[tuple[str, str, str], list] = {}

    def _local(key):
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = bucket_of(key, granule)
        return bucket

    heads = []
    tails = []
    before_total = 0
    after_total = 0
    head = 0
    tail = 0
    for i in range(n_a):
        start_i = starts_a[i]
        end_i = ends_a[i]
        while head < n_b and ends_b[head] + epsilon < start_i:
            head += 1
        threshold = end_i + epsilon + 1
        if tail < head:
            tail = head
        while tail < n_b and starts_b[tail] < threshold:
            tail += 1
        heads.append(head)
        tails.append(tail)
        before_total += head
        after_total += n_b - tail
        for j in range(head, tail):
            start_j = starts_b[j]
            end_j = ends_b[j]
            if start_j != start_i:
                a_first = start_i < start_j
            elif end_j != end_i:
                a_first = end_i > end_j
            else:
                a_first = event_a <= event_b
            if a_first:
                s_1, e_1, s_2, e_2 = start_i, end_i, start_j, end_j
            else:
                s_1, e_1, s_2, e_2 = start_j, end_j, start_i, end_i
            if s_1 <= s_2 and e_2 <= e_1 + epsilon:
                rel = CONTAINS
            elif s_2 >= e_1 + 1 - epsilon:
                rel = FOLLOWS
            elif (
                s_1 < s_2
                and e_1 + epsilon < e_2
                and e_1 + 1 - s_2 >= min_overlap - epsilon
            ):
                rel = OVERLAPS
            else:
                continue
            if a_first:
                _local((rel, event_a, event_b)).append((i, j))
            else:
                _local((rel, event_b, event_a)).append((j, i))
    if before_total:
        _local(follows_ba).add_bulk_before(heads, before_total)
    if after_total:
        _local(follows_ab).add_bulk_after(tails, n_b, after_total)
    if metrics.metrics_enabled():
        metrics.inc("kernel.pairs.bulk", before_total + after_total)
        metrics.inc(
            "kernel.pairs.near_classified", sum(tails) - sum(heads)
        )


def _self_join_python(
    column, event, granule, epsilon, min_overlap, bucket_of
) -> None:
    """Pure-Python same-event join (distinct ordered pairs ``i < j``)."""
    starts, ends = column.starts, column.ends
    n = len(starts)
    buckets: dict[tuple[str, str, str], list] = {}

    def _local(key):
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = bucket_of(key, granule)
        return bucket

    tails = []
    after_total = 0
    tail = 0
    for i in range(n):
        start_i = starts[i]
        end_i = ends[i]
        if tail <= i:
            tail = i + 1
        threshold = end_i + epsilon + 1
        while tail < n and starts[tail] < threshold:
            tail += 1
        tails.append(tail)
        after_total += n - tail
        for j in range(i + 1, tail):
            start_j = starts[j]
            end_j = ends[j]
            if start_i <= start_j and end_j <= end_i + epsilon:
                rel = CONTAINS
            elif start_j >= end_i + 1 - epsilon:
                rel = FOLLOWS
            elif (
                start_i < start_j
                and end_i + epsilon < end_j
                and end_i + 1 - start_j >= min_overlap - epsilon
            ):
                rel = OVERLAPS
            else:
                continue
            _local((rel, event, event)).append((i, j))
    if after_total:
        _local((FOLLOWS, event, event)).add_bulk_after(tails, n, after_total)
    if metrics.metrics_enabled():
        metrics.inc("kernel.pairs.bulk", after_total)
        metrics.inc(
            "kernel.pairs.near_classified", sum(tails) - n * (n + 1) // 2
        )


# ---------------------------------------------------------------------------
# Group extension (step 2.2, k >= 3)
# ---------------------------------------------------------------------------


def _column_boundaries(np, existing_column, new_column, epsilon):
    """Bulk-Follows boundaries of *every* existing instance against the
    new-event column, as parallel ``head`` / ``tail`` lists.

    One vectorized ``searchsorted`` pair per (existing event, granule)
    replaces two bisects per verdict row; the pure-Python path keeps the
    bisect-equivalent scan on the raw arrays.
    """
    if np is not None:
        ex_starts = np.frombuffer(existing_column.starts_arr, dtype=np.int64)
        ex_ends = np.frombuffer(existing_column.ends_arr, dtype=np.int64)
        new_starts = np.frombuffer(new_column.starts_arr, dtype=np.int64)
        new_ends = np.frombuffer(new_column.ends_arr, dtype=np.int64)
        heads = new_ends.searchsorted(ex_starts - (epsilon + 1), side="right")
        tails = np.maximum(
            new_starts.searchsorted(ex_ends + (epsilon + 1), side="left"), heads
        )
        return heads.tolist(), tails.tolist()
    from bisect import bisect_left, bisect_right

    new_starts = new_column.starts
    new_ends = new_column.ends
    heads = []
    tails = []
    for index in range(len(existing_column.starts_arr)):
        head = bisect_right(new_ends, existing_column.starts_arr[index] - epsilon - 1)
        tail = bisect_left(new_starts, existing_column.ends_arr[index] + epsilon + 1)
        heads.append(head)
        tails.append(tail if tail > head else head)
    return heads, tails


def _verdict_row_array(
    existing_column,
    existing_event: str,
    existing_index: int,
    head: int,
    tail: int,
    event: str,
    new_column,
    epsilon: int,
    min_overlap: int,
    allowed_triples,
    before,
    after,
):
    """One existing instance's verdicts against the whole new column.

    Returns ``(row, head, tail)``: ``row`` is the full verdict list
    indexed by new-instance position (entries are ``(existing_first,
    triple)`` or :data:`_NO_RELATION`); ``before`` / ``after`` are the
    constant verdicts of the bulk prefix/suffix zones, precomputed once
    per existing event by the caller (they depend only on the event
    pair, not on the instance).
    """
    new_starts = new_column.starts
    new_ends = new_column.ends
    n_new = len(new_starts)
    s_e = existing_column.starts_arr[existing_index]
    e_e = existing_column.ends_arr[existing_index]
    row: list = [before] * head if head else []
    for j in range(head, tail):
        s_n = new_starts[j]
        e_n = new_ends[j]
        if s_e != s_n:
            existing_first = s_e < s_n
        elif e_e != e_n:
            existing_first = e_e > e_n
        else:
            existing_first = existing_event <= event
        if existing_first:
            s_1, e_1, s_2, e_2 = s_e, e_e, s_n, e_n
        else:
            s_1, e_1, s_2, e_2 = s_n, e_n, s_e, e_e
        if s_1 <= s_2 and e_2 <= e_1 + epsilon:
            rel = CONTAINS
        elif s_2 >= e_1 + 1 - epsilon:
            rel = FOLLOWS
        elif (
            s_1 < s_2
            and e_1 + epsilon < e_2
            and e_1 + 1 - s_2 >= min_overlap - epsilon
        ):
            rel = OVERLAPS
        else:
            row.append(_NO_RELATION)
            continue
        if existing_first:
            info = (True, intern_triple(rel, existing_event, event))
        else:
            info = (False, intern_triple(rel, event, existing_event))
        if allowed_triples is not None and info[1] not in allowed_triples:
            info = _NO_RELATION
        row.append(info)
    if tail < n_new:
        row.extend([after] * (n_new - tail))
    if existing_event == event and existing_index < n_new:
        # The existing instance is itself a column entry of the new
        # event; it always falls inside the near window, so patching the
        # row never touches the bulk-zone constants.
        row[existing_index] = _NO_RELATION
    return (row, head, tail)


def _resolve_zone_bucket(
    shape_cache: dict,
    accumulator: dict,
    shape: tuple,
    events: tuple[str, ...],
    prev_triples: tuple[Triple, ...],
    partners: tuple[Triple, ...],
    position: int,
    k: int,
    granule: int,
) -> set:
    """The dedup set of one bulk-zone shape at one granule.

    Resolved lazily on the first contributing assignment (so a granule
    whose assignments all have an empty zone never creates an empty
    bucket), then reused for the rest of the granule by the caller.
    """
    entry = shape_cache.get(shape)
    if entry is None:
        triples = splice_triples(prev_triples, partners, position, k)
        per_granule = accumulator.setdefault((events, triples), {})
        entry = shape_cache[shape] = [per_granule, -1, None]
    if entry[1] != granule:
        per_granule = entry[0]
        bucket = per_granule.get(granule)
        if bucket is None:
            bucket = per_granule[granule] = set()
        entry[1] = granule
        entry[2] = bucket
    return entry[2]


def array_extend_group_patterns(
    hlh1: HLH1,
    previous: HLHk,
    entry_prev,
    event: str,
    candidate_triples,
    params,
    check_candidates: bool,
    parent_patterns=None,
    granule_filter=None,
) -> tuple[
    dict[TemporalPattern, list[int]],
    dict[TemporalPattern, dict[int, list[Assignment]]],
]:
    """Extend every candidate pattern of one parent group with ``event``.

    Drop-in replacement for
    :func:`repro.core.stpm.extend_group_patterns` (same signature,
    streaming hooks included, equivalent output).  On top of the sweep
    kernel's verdict-row caching it precomputes whole-column bulk
    boundaries (:func:`_column_boundaries`) and handles each assignment's
    bulk zones in O(1): new-instance indices where every slot's verdict
    is the constant before/after Follows are accepted as one batch --
    or rejected as one batch when the Iterative Check already discarded
    that Follows triple -- leaving the per-index loop only the combined
    near window.
    """
    relation = params.relation
    epsilon = relation.epsilon
    min_overlap = relation.min_overlap
    np = get_numpy()
    allowed_triples = candidate_triples if check_candidates else None
    if parent_patterns is None:
        parent_patterns = entry_prev.patterns
    accumulator: dict[tuple, dict[int, set[Assignment]]] = {}
    # Per-granule caches: per existing event, a row list parallel to the
    # event's instance column (verdict rows filled lazily) plus the
    # whole-column boundary arrays.
    row_cache: dict[int, dict[str, list]] = {}
    boundary_cache: dict[int, dict[str, tuple[list, list]]] = {}
    # Bulk-zone verdict constants per existing event: the prefix verdict
    # of a slot is always "new Follows existing" and the suffix verdict
    # "existing Follows new" -- independent of the realizing instance.
    zone_constants: dict[str, tuple] = {}

    def _zone_constants(existing_event: str) -> tuple:
        constants = zone_constants.get(existing_event)
        if constants is None:
            before = (False, intern_triple(FOLLOWS, event, existing_event))
            after = (True, intern_triple(FOLLOWS, existing_event, event))
            if allowed_triples is not None:
                if before[1] not in allowed_triples:
                    before = _NO_RELATION
                if after[1] not in allowed_triples:
                    after = _NO_RELATION
            constants = zone_constants[existing_event] = (before, after)
        return constants

    event_support = hlh1.support_of(event)
    for pattern_prev in parent_patterns:
        prev_events = pattern_prev.events
        prev_triples = pattern_prev.triples
        k = len(prev_events) + 1
        n_slots = k - 1
        shape_cache: dict[tuple, list] = {}
        # The bulk-zone shapes of this parent pattern are assignment
        # independent: every slot's prefix verdict is the same Follows
        # triple for all realizing assignments, so the spliced identity
        # and the Iterative Check verdict are hoisted out of the
        # per-assignment loop entirely.
        before_partners = tuple(
            intern_triple(FOLLOWS, event, prev_event) for prev_event in prev_events
        )
        after_partners = tuple(
            intern_triple(FOLLOWS, prev_event, event) for prev_event in prev_events
        )
        if allowed_triples is None:
            before_ok = after_ok = True
        else:
            before_ok = all(t in allowed_triples for t in before_partners)
            after_ok = all(t in allowed_triples for t in after_partners)
        prefix_shape = (0, *before_partners)
        suffix_shape = (n_slots, *after_partners)
        prefix_events = (event,) + prev_events
        suffix_events = prev_events + (event,)
        common = previous.support_of(pattern_prev) & event_support
        if granule_filter is not None:
            common = common & granule_filter
        for granule in common:
            new_column = hlh1.column_of(event, granule)
            n_new = len(new_column.starts_arr)
            if n_new == 0:
                continue
            cache = row_cache.get(granule)
            if cache is None:
                cache = row_cache[granule] = {}
                boundary_cache[granule] = {}
            boundaries = boundary_cache[granule]
            # Per-slot row lists, indexed directly by the encoded
            # instance index of the slot's event (no tuple-key hashing
            # in the per-assignment loop), plus the resolved boundary
            # arrays and bulk-zone constants so a verdict-row miss costs
            # one call.
            slot_rows = []
            slot_columns = []
            slot_bounds = []
            slot_zones = []
            for existing_event in prev_events:
                rows_of = cache.get(existing_event)
                existing_column = hlh1.column_of(existing_event, granule)
                if rows_of is None:
                    rows_of = cache[existing_event] = (
                        [None] * len(existing_column.starts_arr)
                    )
                bounds = boundaries.get(existing_event)
                if bounds is None:
                    bounds = boundaries[existing_event] = _column_boundaries(
                        np, existing_column, new_column, epsilon
                    )
                slot_rows.append(rows_of)
                slot_columns.append(existing_column)
                slot_bounds.append(bounds)
                slot_zones.append(_zone_constants(existing_event))
            prefix_bucket: set | None = None
            suffix_bucket: set | None = None
            assignments = previous.assignments_of(pattern_prev, granule)
            if n_slots == 2:
                # k = 3 fast path (the dominant level under the default
                # max_pattern_length): slot loop unrolled, extended
                # tuples built positionally.
                rows_of_0, rows_of_1 = slot_rows
                column_0, column_1 = slot_columns
                bounds_0, bounds_1 = slot_bounds
                zone_0, zone_1 = slot_zones
                event_0, event_1 = prev_events
                for assignment in assignments:
                    index_0, index_1 = assignment
                    row_0 = rows_of_0[index_0]
                    if row_0 is None:
                        row_0 = rows_of_0[index_0] = _verdict_row_array(
                            column_0, event_0, index_0,
                            bounds_0[0][index_0], bounds_0[1][index_0],
                            event, new_column, epsilon, min_overlap,
                            allowed_triples, zone_0[0], zone_0[1],
                        )
                    row_1 = rows_of_1[index_1]
                    if row_1 is None:
                        row_1 = rows_of_1[index_1] = _verdict_row_array(
                            column_1, event_1, index_1,
                            bounds_1[0][index_1], bounds_1[1][index_1],
                            event, new_column, epsilon, min_overlap,
                            allowed_triples, zone_1[0], zone_1[1],
                        )
                    head = row_0[1]
                    other = row_1[1]
                    lo = other if other < head else head
                    tail = row_0[2]
                    other = row_1[2]
                    hi = other if other > tail else tail
                    if before_ok and lo:
                        if prefix_bucket is None:
                            prefix_bucket = _resolve_zone_bucket(
                                shape_cache, accumulator, prefix_shape,
                                prefix_events, prev_triples,
                                before_partners, 0, k, granule,
                            )
                        prefix_bucket.update(
                            zip(range(lo), repeat(index_0), repeat(index_1))
                        )
                    if after_ok and hi < n_new:
                        if suffix_bucket is None:
                            suffix_bucket = _resolve_zone_bucket(
                                shape_cache, accumulator, suffix_shape,
                                suffix_events, prev_triples,
                                after_partners, n_slots, k, granule,
                            )
                        suffix_bucket.update(
                            zip(repeat(index_0), repeat(index_1), range(hi, n_new))
                        )
                    if lo >= hi:
                        continue
                    verdicts_0 = row_0[0]
                    verdicts_1 = row_1[0]
                    for new_index in range(lo, hi):
                        info_0 = verdicts_0[new_index]
                        if info_0 is _NO_RELATION:
                            continue
                        info_1 = verdicts_1[new_index]
                        if info_1 is _NO_RELATION:
                            continue
                        if info_0[0]:
                            position = 2 if info_1[0] else 1
                            extended = (
                                (index_0, index_1, new_index)
                                if position == 2
                                else (index_0, new_index, index_1)
                            )
                        elif info_1[0]:
                            position = 1
                            extended = (index_0, new_index, index_1)
                        else:
                            position = 0
                            extended = (new_index, index_0, index_1)
                        shape_key = (position, info_0[1], info_1[1])
                        entry = shape_cache.get(shape_key)
                        if entry is None:
                            events = (
                                prev_events[:position]
                                + (event,)
                                + prev_events[position:]
                            )
                            triples = splice_triples(
                                prev_triples,
                                (info_0[1], info_1[1]),
                                position,
                                k,
                            )
                            per_granule = accumulator.setdefault(
                                (events, triples), {}
                            )
                            entry = shape_cache[shape_key] = [per_granule, -1, None]
                        if entry[1] != granule:
                            per_granule = entry[0]
                            bucket = per_granule.get(granule)
                            if bucket is None:
                                bucket = per_granule[granule] = set()
                            entry[1] = granule
                            entry[2] = bucket
                        entry[2].add(extended)
                continue
            for assignment in assignments:
                rows = []
                lo = n_new
                hi = 0
                for slot in range(n_slots):
                    index = assignment[slot]
                    rows_of = slot_rows[slot]
                    row = rows_of[index]
                    if row is None:
                        bounds = slot_bounds[slot]
                        zone = slot_zones[slot]
                        row = rows_of[index] = _verdict_row_array(
                            slot_columns[slot], prev_events[slot], index,
                            bounds[0][index], bounds[1][index],
                            event, new_column, epsilon, min_overlap,
                            allowed_triples, zone[0], zone[1],
                        )
                    rows.append(row)
                    head = row[1]
                    tail = row[2]
                    if head < lo:
                        lo = head
                    if tail > hi:
                        hi = tail
                if before_ok and lo:
                    # Bulk prefix: every new instance before lo is a pure
                    # new -> existing Follows against every slot (one
                    # batch; skipped wholesale when the Iterative Check
                    # discarded any of the Follows triples).
                    if prefix_bucket is None:
                        prefix_bucket = _resolve_zone_bucket(
                            shape_cache, accumulator, prefix_shape,
                            prefix_events, prev_triples, before_partners,
                            0, k, granule,
                        )
                    prefix_bucket.update(
                        [(new_index,) + assignment for new_index in range(lo)]
                    )
                if after_ok and hi < n_new:
                    # Bulk suffix: every new instance from hi on is a
                    # pure existing -> new Follows against every slot.
                    if suffix_bucket is None:
                        suffix_bucket = _resolve_zone_bucket(
                            shape_cache, accumulator, suffix_shape,
                            suffix_events, prev_triples, after_partners,
                            n_slots, k, granule,
                        )
                    suffix_bucket.update(
                        [assignment + (new_index,) for new_index in range(hi, n_new)]
                    )
                for new_index in range(lo, hi):
                    position = 0
                    partner: list[Triple] = []
                    valid = True
                    for slot in range(n_slots):
                        info = rows[slot][0][new_index]
                        if info is _NO_RELATION:
                            valid = False
                            break
                        if info[0]:
                            position += 1
                        partner.append(info[1])
                    if not valid:
                        continue
                    shape_key = (position, *partner)
                    entry = shape_cache.get(shape_key)
                    if entry is None:
                        events = (
                            prev_events[:position]
                            + (event,)
                            + prev_events[position:]
                        )
                        triples = splice_triples(prev_triples, partner, position, k)
                        per_granule = accumulator.setdefault((events, triples), {})
                        entry = shape_cache[shape_key] = [per_granule, -1, None]
                    if entry[1] != granule:
                        per_granule = entry[0]
                        bucket = per_granule.get(granule)
                        if bucket is None:
                            bucket = per_granule[granule] = set()
                        entry[1] = granule
                        entry[2] = bucket
                    entry[2].add(
                        assignment[:position]
                        + (new_index,)
                        + assignment[position:]
                    )
    pattern_support: dict[TemporalPattern, list[int]] = {}
    pattern_assignments: dict[TemporalPattern, dict[int, list[Assignment]]] = {}
    for (events, triples), per_granule in accumulator.items():
        pattern = intern_pattern(events, triples)
        pattern_support[pattern] = sorted(per_granule)
        pattern_assignments[pattern] = {
            granule: sorted(assignments)
            for granule, assignments in per_granule.items()
        }
    return pattern_support, pattern_assignments
