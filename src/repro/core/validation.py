"""Independent validation of mining results against their DSEQ.

Re-derives, from first principles (Defs. 3.12-3.15), everything a
:class:`~repro.core.results.MiningResult` claims:

* every support granule actually realizes the pattern (an instance
  assignment with all pairwise relations exists there);
* no occurrence granule is missing from the support set;
* the seasonal decomposition matches a fresh :func:`compute_seasons`;
* every threshold (minDensity, distInterval, minSeason) holds.

This is a verification oracle: slower than the miner (it re-enumerates
instance combinations per granule) but entirely independent of the HLH
machinery, which makes it the right tool for failure-injection tests and
for users auditing archived results.
"""

from __future__ import annotations

from itertools import product

from repro.core.config import MiningParams
from repro.core.pattern import TemporalPattern, pattern_from_instances
from repro.core.results import MiningResult, SeasonalPattern
from repro.core.seasonality import compute_seasons
from repro.transform.sequence_db import TemporalSequenceDatabase


def pattern_occurs_at(
    pattern: TemporalPattern,
    dseq: TemporalSequenceDatabase,
    position: int,
    params: MiningParams,
) -> bool:
    """Does some instance assignment realize ``pattern`` at ``position``?"""
    row = dseq.sequence_at(position)
    pools = []
    for event in pattern.events:
        instances = row.instances_of(event)
        if not instances:
            return False
        pools.append(instances)
    for assignment in product(*pools):
        if len(set(assignment)) != len(assignment):
            continue  # duplicate events need distinct instances
        realized = pattern_from_instances(assignment, params.relation)
        if realized is not None and realized == pattern:
            return True
    return False


def true_support(
    pattern: TemporalPattern,
    dseq: TemporalSequenceDatabase,
    params: MiningParams,
) -> list[int]:
    """The pattern's support set, recomputed by exhaustive per-granule check."""
    if pattern.size == 1:
        return dseq.event_support().get(pattern.events[0], [])
    candidates = dseq.event_support().get(pattern.events[0], range(1, len(dseq) + 1))
    return [
        position
        for position in candidates
        if pattern_occurs_at(pattern, dseq, position, params)
    ]


def validate_seasonal_pattern(
    sp: SeasonalPattern,
    dseq: TemporalSequenceDatabase,
    params: MiningParams,
) -> list[str]:
    """All violations of one reported pattern (empty list = valid)."""
    problems: list[str] = []
    label = sp.pattern.describe()
    recomputed = true_support(sp.pattern, dseq, params)
    if list(sp.support) != recomputed:
        problems.append(
            f"{label}: reported support {list(sp.support)} != recomputed {recomputed}"
        )
    fresh = compute_seasons(list(sp.support), params)
    if fresh.seasons != sp.seasons.seasons:
        problems.append(f"{label}: seasonal decomposition mismatch")
    if sp.n_seasons < params.min_season:
        problems.append(f"{label}: only {sp.n_seasons} seasons < minSeason")
    for density in sp.seasons.densities():
        if density < params.min_density:
            problems.append(f"{label}: season density {density} < minDensity")
    for distance in sp.seasons.distances():
        if not params.dist_min <= distance <= params.dist_max:
            problems.append(f"{label}: season distance {distance} outside distInterval")
    return problems


def validate_result(
    result: MiningResult,
    dseq: TemporalSequenceDatabase,
    params: MiningParams,
    limit: int | None = None,
) -> list[str]:
    """Validate (up to ``limit``) patterns of a result; returns violations."""
    problems: list[str] = []
    patterns = result.patterns if limit is None else result.patterns[:limit]
    for sp in patterns:
        problems.extend(validate_seasonal_pattern(sp, dseq, params))
    return problems
