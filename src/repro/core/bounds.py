"""Theorem 1 and Corollary 1.1 (paper Sec. V-B).

* :func:`max_season_lower_bound` -- Eq. (6): given the MI threshold mu and
  the event-pair probabilities, a lower bound on the pair's maxSeason.
* :func:`mu_threshold` -- Eq. (11): the mu that guarantees the pair's
  maxSeason is at least minSeason.
* :func:`series_pair_mu` -- the final mu for a series pair: the minimum mu
  over all its event pairs (as the paper prescribes below Corollary 1.1).

Conventions: ``lambda1`` is the minimum symbol probability of the
conditioned series ``XS``; ``lambda2`` is the probability of the specific
symbol ``Y1`` of ``YS``; logs are base 2.
"""

from __future__ import annotations

import math

from repro.core.config import MiningParams
from repro.core.lambertw import BRANCH_POINT, lambert_w0
from repro.exceptions import MiningError
from repro.symbolic.series import SymbolicSeries


def _validate_probability(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise MiningError(f"{name} must be a probability in (0, 1], got {value}")


def max_season_lower_bound(
    lambda1: float,
    lambda2: float,
    mu: float,
    n_granules: int,
    min_density: int,
) -> float:
    """Eq. (6): lower bound on ``maxSeason(X1, Y1)`` given NMI >= mu.

    Returns 0.0 when the Lambert argument falls below the branch point
    -1/e, in which case the derivation imposes no constraint.
    """
    _validate_probability("lambda1", lambda1)
    _validate_probability("lambda2", lambda2)
    if not 0.0 <= mu <= 1.0:
        raise MiningError(f"mu must be in [0, 1], got {mu}")
    if lambda1 == 1.0:
        # log(lambda1) == 0: XS is constant, the bound degenerates.
        return 0.0
    argument = (1.0 - mu) * math.log2(lambda1) * math.log(2.0) / lambda2
    if argument < BRANCH_POINT:
        # Corollary 1.1's case-1 mu lands exactly on -1/e; tolerate the
        # floating-point residue of that round trip.
        if argument > BRANCH_POINT - 1e-9:
            argument = BRANCH_POINT
        else:
            return 0.0
    return (lambda2 * n_granules / min_density) * math.exp(lambert_w0(argument))


def mu_threshold(
    lambda1: float,
    lambda2: float,
    min_season: int,
    min_density: int,
    n_granules: int,
) -> float:
    """Eq. (11): the mu making the pair's maxSeason bound reach minSeason.

    The result is clamped to [0, 1]; a clamp at 1.0 means only a perfectly
    correlated pair could guarantee the requested seasonality.
    """
    _validate_probability("lambda1", lambda1)
    _validate_probability("lambda2", lambda2)
    if min_season < 1 or min_density < 1 or n_granules < 1:
        raise MiningError("min_season, min_density and n_granules must be >= 1")
    if lambda1 == 1.0:
        # Constant conditioned series: no uncertainty, any mu works.
        return 0.0
    rho = min_season * min_density / (lambda2 * n_granules)
    log2_lambda1 = math.log2(lambda1)  # negative
    if rho <= 1.0 / math.e:
        mu = 1.0 - lambda2 / (math.e * math.log(2.0) * math.log2(1.0 / lambda1))
    else:
        mu = 1.0 - rho * lambda2 * math.log2(rho) / (math.log(2.0) * log2_lambda1)
    return min(max(mu, 0.0), 1.0)


def series_pair_mu(
    x: SymbolicSeries,
    y: SymbolicSeries,
    params: MiningParams,
    n_granules: int,
) -> float:
    """The mu of a series pair: minimum mu over all event pairs in (XS, YS).

    ``lambda1`` is fixed per direction (the minimum observed symbol
    probability of XS); mu then varies with ``lambda2 = p(Y1)`` over YS's
    observed symbols, and the minimum over them is returned.
    """
    probabilities_x = [p for p in x.probabilities().values() if p > 0.0]
    probabilities_y = [p for p in y.probabilities().values() if p > 0.0]
    lambda1 = min(probabilities_x)
    return min(
        mu_threshold(lambda1, lambda2, params.min_season, params.min_density, n_granules)
        for lambda2 in probabilities_y
    )
