"""Entropy and mutual information on symbolic series (paper Defs. 5.1-5.3).

All logarithms are base 2 (the paper's proofs use ``ln 2`` conversion
factors, i.e. bits).  Probabilities are empirical frequencies over the
aligned symbolic series in ``DSYB``; the joint distribution pairs the two
series position by position.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.exceptions import MiningError
from repro.symbolic.series import SymbolicSeries


def entropy(series: SymbolicSeries) -> float:
    """Shannon entropy ``H(XS)`` in bits (Def. 5.1, Eq. (2))."""
    total = len(series)
    return -sum(
        (count / total) * math.log2(count / total)
        for count in Counter(series.symbols).values()
    )


def joint_probabilities(
    x: SymbolicSeries, y: SymbolicSeries
) -> dict[tuple[str, str], float]:
    """Empirical joint distribution ``p(x, y)`` of two aligned series."""
    if len(x) != len(y):
        raise MiningError(
            f"series {x.name!r} ({len(x)}) and {y.name!r} ({len(y)}) "
            "must be aligned to compute joint probabilities"
        )
    counts = Counter(zip(x.symbols, y.symbols))
    total = len(x)
    return {pair: count / total for pair, count in counts.items()}


def conditional_entropy(x: SymbolicSeries, y: SymbolicSeries) -> float:
    """Conditional entropy ``H(XS | YS)`` in bits (Eq. (3))."""
    joint = joint_probabilities(x, y)
    p_y = y.probabilities()
    result = 0.0
    for (_, symbol_y), p_xy in joint.items():
        result -= p_xy * math.log2(p_xy / p_y[symbol_y])
    return result


def mutual_information(x: SymbolicSeries, y: SymbolicSeries) -> float:
    """Mutual information ``I(XS; YS)`` in bits (Def. 5.2, Eq. (4))."""
    joint = joint_probabilities(x, y)
    p_x = x.probabilities()
    p_y = y.probabilities()
    result = 0.0
    for (symbol_x, symbol_y), p_xy in joint.items():
        result += p_xy * math.log2(p_xy / (p_x[symbol_x] * p_y[symbol_y]))
    # Clamp tiny negative floating-point residue.
    return max(result, 0.0)


def normalized_mutual_information(x: SymbolicSeries, y: SymbolicSeries) -> float:
    """Normalized MI ``I(XS;YS) / H(XS)`` (Def. 5.3, Eq. (5)).

    Asymmetric by design.  A zero-entropy (constant) ``x`` carries no
    uncertainty to reduce; we define the NMI as 0 in that degenerate case.
    """
    h_x = entropy(x)
    if h_x == 0.0:
        return 0.0
    return min(mutual_information(x, y) / h_x, 1.0)


def min_pairwise_nmi(x: SymbolicSeries, y: SymbolicSeries) -> float:
    """The symmetric gate of Def. 5.4: ``min(NMI(X;Y), NMI(Y;X))``."""
    return min(
        normalized_mutual_information(x, y),
        normalized_mutual_information(y, x),
    )
