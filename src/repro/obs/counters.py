"""Process-local counters, gauges, and histograms for the mining runtime.

The registry answers "how many pairs, how many intersections, how many
pool respawns" without cProfile.  Three design rules keep it honest:

* **Zero overhead when disabled.**  ``inc``/``observe``/``set_gauge``
  check a module-level boolean first and return immediately -- no
  attribute lookups, no allocations -- so the step-2.2 hot loops cost
  nothing when telemetry is off.
* **Picklable, mergeable snapshots.**  A snapshot is a plain dict of
  plain dicts, so :class:`~repro.core.executor.ParallelExecutor` workers
  can ship their per-task metric snapshots back inside the task result
  and the parent merges them into one job view (counters add, gauges
  last-write-wins, histograms combine count/total/min/max/buckets).
* **Thread-local registries.**  Each thread records into its own
  registry; :func:`capture` installs a fresh one for the duration of a
  task so worker-side counts are isolated and shippable.  Merging a
  shipped snapshot happens in the caller's thread via :func:`merge`.

Counter names are dotted, lowercase, and enumerated in DESIGN.md's
Observability section (``mine.*``, ``kernel.*``, ``executor.*``,
``stream.*``, ``multigrain.*``).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "MetricRegistry",
    "Histogram",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "registry",
    "inc",
    "set_gauge",
    "observe",
    "capture",
    "merge",
    "summary",
    "reset",
]

# Module-level fast-path flag: the guarded helpers below read this one
# global and bail out before touching any thread-local state.
_ENABLED = False

_TLS = threading.local()


def metrics_enabled() -> bool:
    """True when metric recording is globally enabled."""
    return _ENABLED


def enable_metrics() -> None:
    global _ENABLED
    _ENABLED = True


def disable_metrics() -> None:
    global _ENABLED
    _ENABLED = False


class Histogram:
    """Summary statistics plus power-of-two magnitude buckets.

    Buckets are keyed by the binary exponent of the observed value
    (``math.frexp(value)[1]``), which gives a log2 histogram that merges
    exactly across processes without pre-declared bucket boundaries.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    def merge(self, other: dict[str, Any]) -> None:
        if not other.get("count"):
            return
        self.count += other["count"]
        self.total += other["total"]
        if other["min"] < self.min:
            self.min = other["min"]
        if other["max"] > self.max:
            self.max = other["max"]
        for exponent, hits in other.get("buckets", {}).items():
            key = int(exponent)
            self.buckets[key] = self.buckets.get(key, 0) + hits

    def as_dict(self) -> dict[str, Any]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": mean,
            "buckets": dict(self.buckets),
        }


class MetricRegistry:
    """One process-/thread-local view of all recorded metrics."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict (possibly from another process)."""
        for name, amount in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + amount
        self.gauges.update(snapshot.get("gauges", {}))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge(data)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict (picklable, JSON-able) copy of the registry."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in self.histograms.items()
            },
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


def registry() -> MetricRegistry:
    """The current thread's registry (created on first use)."""
    reg = getattr(_TLS, "registry", None)
    if reg is None:
        reg = _TLS.registry = MetricRegistry()
    return reg


def inc(name: str, amount: int = 1) -> None:
    """Add to a counter.  No-op (and allocation-free) when disabled."""
    if not _ENABLED:
        return
    registry().inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Record a last-write-wins gauge.  No-op when disabled."""
    if not _ENABLED:
        return
    registry().set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation.  No-op when disabled."""
    if not _ENABLED:
        return
    registry().observe(name, value)


@contextmanager
def capture() -> Iterator[MetricRegistry]:
    """Record into a fresh registry for the duration of the block.

    Installs a new thread-local registry and force-enables metrics so a
    worker counts even when the global flag was not inherited (spawn
    start method).  The previous registry and enabled state are restored
    on exit; the captured registry is yielded so its :meth:`snapshot`
    can be shipped back to the parent.
    """
    global _ENABLED
    previous = getattr(_TLS, "registry", None)
    previous_enabled = _ENABLED
    fresh = MetricRegistry()
    _TLS.registry = fresh
    _ENABLED = True
    try:
        yield fresh
    finally:
        _ENABLED = previous_enabled
        if previous is None:
            del _TLS.registry
        else:
            _TLS.registry = previous


def merge(snapshot: dict[str, Any]) -> None:
    """Merge a shipped snapshot into the current thread's registry."""
    if not _ENABLED:
        return
    registry().merge(snapshot)


def summary() -> dict[str, Any]:
    """Snapshot of the current thread's registry."""
    return registry().snapshot()


def reset() -> None:
    """Clear the current thread's registry."""
    registry().clear()
