"""Nestable, thread-safe wall-clock spans with optional memory peaks.

Usage::

    from repro.obs import span

    with span("estpm/step2.2/pairs", level=2) as sp:
        ...
        sp.set(groups=n_groups)

Spans nest per thread: a span opened while another is active becomes
its child, so a mining run exports as one tree (symbolization ->
HLH1 -> step 2.1 -> step 2.2 pair + extension kernels).  Completed
root spans collect in a lock-protected module list shared by all
threads; :func:`trace_tree` / :func:`phase_summary` / :func:`write_trace`
export them.

Zero overhead when disabled: :func:`span` returns a shared no-op
singleton (``span(...) is span(...)``) whose ``__enter__``/``__exit__``/
``set`` do nothing, so instrumented code paths cost two function calls
and no allocations when tracing is off.

``span(name, memory=True)`` additionally records the traced-memory peak
over the span via the :mod:`repro.metrics.memory` frame stack, which
nests correctly with enclosing ``measure_peak_memory`` calls.  Memory
spans start ``tracemalloc`` and are therefore *not* zero-cost; reserve
them for coarse phases.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "Span",
    "span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "reset_trace",
    "trace_roots",
    "trace_tree",
    "phase_summary",
    "write_trace",
]

TRACE_VERSION = 1

_ENABLED = False
_TLS = threading.local()
_LOCK = threading.Lock()
_ROOTS: list[Span] = []
_EPOCH_NS = time.perf_counter_ns()


def tracing_enabled() -> bool:
    """True when span recording is globally enabled."""
    return _ENABLED


def enable_tracing() -> None:
    global _ENABLED
    _ENABLED = True


def disable_tracing() -> None:
    global _ENABLED
    _ENABLED = False


def reset_trace() -> None:
    """Drop all completed root spans and this thread's open stack."""
    with _LOCK:
        _ROOTS.clear()
    _TLS.stack = []


class Span:
    """One timed phase; children are spans opened while it is active."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "start_offset_ns",
        "duration_ns",
        "memory_peak_bytes",
        "_memory",
        "_started_ns",
    )

    def __init__(self, name: str, memory: bool, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start_offset_ns = 0
        self.duration_ns = 0
        self.memory_peak_bytes: int | None = None
        self._memory = memory
        self._started_ns = 0

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)

    def __enter__(self) -> Span:
        stack = getattr(_TLS, "stack", None)
        if stack is None:
            stack = _TLS.stack = []
        stack.append(self)
        if self._memory:
            # Imported lazily: repro.metrics pulls in core modules, and
            # importing it at module scope would cycle through packages
            # that themselves import repro.obs.
            from repro.metrics.memory import open_frame

            open_frame()
        self._started_ns = time.perf_counter_ns()
        self.start_offset_ns = self._started_ns - _EPOCH_NS
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.duration_ns = time.perf_counter_ns() - self._started_ns
        if self._memory:
            from repro.metrics.memory import close_frame

            self.memory_peak_bytes = close_frame()
        stack = _TLS.stack
        stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            with _LOCK:
                _ROOTS.append(self)

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "start_offset_ns": self.start_offset_ns,
            "duration_ns": self.duration_ns,
            "seconds": self.seconds,
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.memory_peak_bytes is not None:
            data["memory_peak_bytes"] = self.memory_peak_bytes
        data["children"] = [child.to_dict() for child in self.children]
        return data


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str, memory: bool = False, **attrs: Any) -> Any:
    """Open a span (use as a context manager).

    Returns the shared no-op singleton when tracing is disabled, so the
    call allocates nothing on the fast path.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return Span(name, memory, attrs)


def trace_roots() -> list[Span]:
    """Completed root spans, in completion order."""
    with _LOCK:
        return list(_ROOTS)


def trace_tree() -> list[dict[str, Any]]:
    """All completed root spans as nested JSON-able dicts."""
    return [root.to_dict() for root in trace_roots()]


def _walk(spans: Iterable[Span]) -> Iterable[Span]:
    for entry in spans:
        yield entry
        yield from _walk(entry.children)


def phase_summary() -> list[dict[str, Any]]:
    """Flat per-name aggregation over the whole trace.

    ``self_seconds`` excludes time spent in child spans, so the summary
    answers "which phase itself is hot" even when phases nest.
    """
    totals: dict[str, dict[str, Any]] = {}
    for entry in _walk(trace_roots()):
        row = totals.setdefault(
            entry.name,
            {"name": entry.name, "calls": 0, "seconds": 0.0, "self_seconds": 0.0},
        )
        row["calls"] += 1
        row["seconds"] += entry.seconds
        row["self_seconds"] += entry.seconds - sum(
            child.seconds for child in entry.children
        )
        if entry.memory_peak_bytes is not None:
            row["memory_peak_bytes"] = max(
                row.get("memory_peak_bytes", 0), entry.memory_peak_bytes
            )
    return sorted(totals.values(), key=lambda row: -row["seconds"])


def write_trace(
    path: str | Path,
    command: str | None = None,
    counters: dict[str, Any] | None = None,
) -> Path:
    """Write the collected trace (tree + summary + counters) as JSON."""
    payload: dict[str, Any] = {
        "version": TRACE_VERSION,
        "spans": trace_tree(),
        "summary": phase_summary(),
    }
    if command is not None:
        payload["command"] = command
    if counters is not None:
        payload["counters"] = counters
    # Imported lazily: repro.io's package init reaches (via the archive
    # readers and the miners) back into modules that import this one.
    from repro.io.atomic import write_text_atomic

    return write_text_atomic(
        path, json.dumps(payload, indent=2, sort_keys=False) + "\n"
    )
