"""Structured stdlib logging for the ``repro.*`` logger hierarchy.

Two formatters, both single-line and grep-friendly:

* key=value (default): ``2026-08-08T12:00:00 INFO repro.core.executor
  pool spawned workers=8 start_method=fork``
* JSON-lines (``json_lines=True``): one JSON object per record, with
  any ``extra={...}`` fields inlined.

:func:`configure_logging` attaches exactly one stderr handler to the
``repro`` root logger (reconfiguring replaces it, so repeated CLI
invocations in one process never double-log) and disables propagation
so host applications' root handlers are left alone.  Machine-readable
output stays on stdout untouched -- everything logged here goes to
stderr.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime
from typing import Any, TextIO

__all__ = [
    "BASE_LOGGER",
    "LEVELS",
    "KeyValueFormatter",
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
]

BASE_LOGGER = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

# Attributes every LogRecord carries; anything else on the record came
# from ``extra={...}`` and is emitted as structured fields.
_STANDARD_ATTRS = frozenset(
    logging.makeLogRecord({}).__dict__
) | {"message", "asctime", "taskName"}


def _extra_fields(record: logging.LogRecord) -> dict[str, Any]:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _STANDARD_ATTRS
    }


def _timestamp(record: logging.LogRecord) -> str:
    return datetime.fromtimestamp(record.created).isoformat(timespec="seconds")


class KeyValueFormatter(logging.Formatter):
    """``<ts> <LEVEL> <logger> <message> key=value ...``"""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        parts = [_timestamp(record), record.levelname, record.name, message]
        for key, value in sorted(_extra_fields(record).items()):
            parts.append(f"{key}={value}")
        line = " ".join(parts)
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields are inlined."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": _timestamp(record),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_extra_fields(record))
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_logging(
    level: str | int = "warning",
    json_lines: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Attach the single ``repro`` stderr handler; returns the logger."""
    if isinstance(level, str):
        try:
            level = LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
            ) from None
    root = logging.getLogger(BASE_LOGGER)
    for handler in [h for h in root.handlers if getattr(h, "_repro_handler", False)]:
        root.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else KeyValueFormatter())
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Accepts either a dotted module name that already starts with
    ``repro`` (the usual ``get_logger(__name__)``) or a bare suffix.
    """
    if not name:
        return logging.getLogger(BASE_LOGGER)
    if name == BASE_LOGGER or name.startswith(BASE_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{BASE_LOGGER}.{name}")
