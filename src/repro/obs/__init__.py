"""Dependency-light telemetry for the mining runtime.

Three pieces, all stdlib-only and all zero-overhead when disabled:

* :mod:`repro.obs.trace` -- nestable, thread-safe wall-clock spans with
  optional traced-memory peaks, exported as a JSON trace tree plus a
  flat per-phase summary.
* :mod:`repro.obs.counters` -- process-local counters/gauges/histograms
  with picklable, mergeable snapshots so pool workers ship their counts
  back to the parent.
* :mod:`repro.obs.logging` -- stdlib logging under the ``repro.*``
  hierarchy with key=value or JSON-lines formatting on stderr.

:func:`enable_telemetry` / :func:`disable_telemetry` flip tracing and
metrics together, which is what the CLI ``--trace`` flag uses.
"""

from __future__ import annotations

from repro.obs.counters import (
    Histogram,
    MetricRegistry,
    capture,
    disable_metrics,
    enable_metrics,
    inc,
    merge,
    metrics_enabled,
    observe,
    registry,
    reset,
    set_gauge,
    summary,
)
from repro.obs.logging import (
    JsonLinesFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.trace import (
    Span,
    disable_tracing,
    enable_tracing,
    phase_summary,
    reset_trace,
    span,
    trace_roots,
    trace_tree,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "Histogram",
    "MetricRegistry",
    "capture",
    "disable_metrics",
    "enable_metrics",
    "inc",
    "merge",
    "metrics_enabled",
    "observe",
    "registry",
    "reset",
    "set_gauge",
    "summary",
    "JsonLinesFormatter",
    "KeyValueFormatter",
    "configure_logging",
    "get_logger",
    "Span",
    "disable_tracing",
    "enable_tracing",
    "phase_summary",
    "reset_trace",
    "span",
    "trace_roots",
    "trace_tree",
    "tracing_enabled",
    "write_trace",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "reset_telemetry",
]


def enable_telemetry() -> None:
    """Turn on both span tracing and metric counters."""
    enable_tracing()
    enable_metrics()


def disable_telemetry() -> None:
    """Turn off both span tracing and metric counters."""
    disable_tracing()
    disable_metrics()


def telemetry_enabled() -> bool:
    return tracing_enabled() or metrics_enabled()


def reset_telemetry() -> None:
    """Drop all collected spans and this thread's counters."""
    reset_trace()
    reset()
