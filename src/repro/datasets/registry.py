"""Dataset registry: load any dataset by name and profile.

Profiles scale the paper's full dataset shapes down to laptop budgets:

* ``full``  -- Table V shapes (RE 1460x21, SC 1249x14, INF 608x25,
  HFM 730x24);
* ``bench`` -- reduced shapes for the benchmark harness (every bench
  finishes in seconds);
* ``tiny``  -- minimal shapes for unit/integration tests.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.dataset import Dataset
from repro.datasets.energy import build_re
from repro.datasets.health import build_hfm, build_inf
from repro.datasets.traffic import build_sc
from repro.exceptions import DatasetError

DATASET_BUILDERS: dict[str, Callable[..., Dataset]] = {
    "RE": build_re,
    "SC": build_sc,
    "INF": build_inf,
    "HFM": build_hfm,
}

#: (n_sequences, n_series) per dataset and profile.
PROFILES: dict[str, dict[str, tuple[int, int]]] = {
    "full": {"RE": (1460, 21), "SC": (1249, 14), "INF": (608, 25), "HFM": (730, 24)},
    "bench": {"RE": (400, 8), "SC": (360, 8), "INF": (300, 8), "HFM": (300, 8)},
    "tiny": {"RE": (120, 5), "SC": (120, 5), "INF": (104, 6), "HFM": (104, 6)},
}


def load_dataset(name: str, profile: str = "bench", seed: int | None = None) -> Dataset:
    """Load a dataset by name (``RE``/``SC``/``INF``/``HFM``) and profile."""
    key = name.upper()
    if key not in DATASET_BUILDERS:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        )
    if profile not in PROFILES:
        raise DatasetError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    n_sequences, n_series = PROFILES[profile][key]
    kwargs: dict = {"n_sequences": n_sequences, "n_series": n_series}
    if seed is not None:
        kwargs["seed"] = seed
    return DATASET_BUILDERS[key](**kwargs)
