"""Synthetic scale-ups (paper Table V, synthetic rows).

The paper scales each real dataset to 1,000x more sequences and up to
10,000 time series for the scalability studies (Figs. 11-14).  We scale the
*simulated* datasets the same way:

* :func:`scale_sequences` rebuilds a dataset with a longer time axis;
* :func:`scale_series` derives extra series from the existing raw signals
  by random source selection, lag, gain and noise -- preserving the
  dataset's correlation structure so that A-STPM's MI screening stays
  meaningful at scale.

Front-end scale workloads
-------------------------
The front-end kernels (symbolize -> DSEQ -> step 2.1) are benchmarked on
workloads this module generates directly:

* :func:`frontend_workload` -- a materialized raw dataset with seasonal
  structure, the EXT6 ladder input (symbolization is part of the timed
  pipeline, so raw values are needed);
* :func:`iter_symbol_blocks` -- a bounded-memory generator of symbol
  blocks for granule counts up to 10^6 and beyond: only one block is
  ever held, so a million-granule stream ingests in a few tens of MB
  regardless of total length.  Deterministic for a given
  ``(seed, block_granules)`` pair -- each block is seeded independently,
  so block N can be regenerated without replaying blocks 0..N-1.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

import numpy as np

from repro.datasets.dataset import Dataset, symbolize
from repro.datasets.synthetic import lagged_response, noisy
from repro.exceptions import DatasetError
from repro.symbolic.alphabet import Alphabet

#: A dataset builder: (n_sequences, n_series, seed) -> Dataset.
Builder = Callable[..., Dataset]


def scale_alphabet(alphabet_size: int) -> Alphabet:
    """A wide quantile alphabet: ``L00 < L01 < ... < L{n-1}``."""
    if alphabet_size < 2:
        raise DatasetError(f"alphabet_size must be >= 2, got {alphabet_size}")
    return Alphabet.levels([f"L{i:02d}" for i in range(alphabet_size)])


def frontend_workload(
    n_granules: int = 1500,
    n_series: int = 8,
    alphabet_size: int = 5,
    ratio: int = 4,
    seed: int = 404,
    noise: float = 0.25,
) -> Dataset:
    """A dense raw dataset exercising the whole front end (EXT6 input).

    Every series is a seasonal sine (period staggered per series so their
    symbol runs interleave) plus noise, quantile-symbolized into a
    ``alphabet_size``-wide alphabet.  The seasonal carrier guarantees
    step 2.1 sees genuinely periodic supports, not noise that the
    maxSeason gate immediately discards.  ``noise`` controls run length:
    the default churns symbols every instant or two (an instance-heavy
    stream), while small values (~0.05) leave smooth multi-instant runs
    (a symbol-heavy stream whose cost is dominated by per-instant work).
    """
    if n_granules < 4:
        raise DatasetError(f"n_granules must be >= 4, got {n_granules}")
    if n_series < 1:
        raise DatasetError(f"n_series must be >= 1, got {n_series}")
    n_instants = n_granules * ratio
    rng = np.random.default_rng(seed)
    t = np.arange(n_instants, dtype=float)
    raw: dict[str, np.ndarray] = {}
    levels: dict[str, Alphabet] = {}
    alphabet = scale_alphabet(alphabet_size)
    for index in range(n_series):
        period = ratio * (8 + 3 * (index % 7))
        signal = np.sin(2.0 * np.pi * t / period) * (1.0 + 0.1 * index)
        name = f"S{index:03d}"
        raw[name] = signal + rng.normal(0.0, noise, size=n_instants)
        levels[name] = alphabet
    return symbolize(
        name=f"frontend-g{n_granules}-s{n_series}-a{alphabet_size}",
        raw=raw,
        levels=levels,
        ratio=ratio,
        dist_interval=(1, max(2, n_granules // 50)),
        description=(
            f"front-end scale workload: {n_series} seasonal series, "
            f"{n_granules} granules, {alphabet_size}-symbol alphabet"
        ),
    )


def iter_symbol_blocks(
    n_granules: int,
    ratio: int = 4,
    n_series: int = 8,
    alphabet_size: int = 4,
    seed: int = 303,
    block_granules: int = 4096,
) -> Iterator[dict[str, tuple[str, ...]]]:
    """Stream ``{series: symbols}`` blocks covering ``n_granules`` granules.

    Generator-based row emission for the million-granule scale harness:
    each yielded block holds ``block_granules * ratio`` symbols per series
    (the final block may be shorter) and earlier blocks are never
    retained, so memory is bounded by one block no matter how large
    ``n_granules`` grows.  Symbols follow a per-series seasonal carrier
    (granule index rotating through the alphabet, staggered by series)
    with deterministic pseudo-random perturbations; each block reseeds
    from ``(seed, series, block_index)``, making any block reproducible
    in isolation.  Feed the blocks to
    :meth:`~repro.streaming.ingest.StreamingDatabase.append_symbols` or
    collect a bench-sized prefix for batch construction.
    """
    if n_granules < 1:
        raise DatasetError(f"n_granules must be >= 1, got {n_granules}")
    if ratio < 1:
        raise DatasetError(f"ratio must be >= 1, got {ratio}")
    if block_granules < 1:
        raise DatasetError(f"block_granules must be >= 1, got {block_granules}")
    symbols = scale_alphabet(alphabet_size).symbols
    names = [f"S{index:03d}" for index in range(n_series)]
    n_blocks = (n_granules + block_granules - 1) // block_granules
    for block_index in range(n_blocks):
        first = block_index * block_granules
        count = min(block_granules, n_granules - first)
        block: dict[str, tuple[str, ...]] = {}
        for series_index, name in enumerate(names):
            rng = random.Random((seed, series_index, block_index))
            out: list[str] = []
            for granule in range(first, first + count):
                # Seasonal carrier: the granule's dominant symbol rotates
                # through the alphabet, staggered per series; ~20% of
                # granules perturb to a random symbol.
                dominant = (granule // 2 + series_index) % len(symbols)
                if rng.random() < 0.2:
                    dominant = rng.randrange(len(symbols))
                symbol = symbols[dominant]
                other = symbols[(dominant + 1) % len(symbols)]
                flip = rng.randrange(ratio + 1)
                out.extend([symbol] * (ratio - flip))
                out.extend([other] * flip)
            block[name] = tuple(out)
        yield block


def scale_sequences(builder: Builder, n_sequences: int, seed: int = 101, **kwargs) -> Dataset:
    """Rebuild a dataset with ``n_sequences`` temporal sequences."""
    if n_sequences < 4:
        raise DatasetError(f"n_sequences must be >= 4, got {n_sequences}")
    dataset = builder(n_sequences=n_sequences, seed=seed, **kwargs)
    dataset.name = f"{dataset.name}-syn-seq{n_sequences}"
    return dataset


def scale_series(
    base: Dataset,
    n_series: int,
    seed: int = 202,
    derived_noise: float = 0.35,
) -> Dataset:
    """Extend a dataset to ``n_series`` by deriving new series.

    Each derived series picks a random source series, applies a random lag
    (0..3 sequences worth of fine granules), a random gain, and fresh
    noise.  About a third of the derived series are pure noise, so the MI
    screening has genuinely uncorrelated series to prune (Table XI).

    Like the paper's synthetic datasets (which are generated wholesale
    rather than extended), the scaled dataset is re-symbolized uniformly
    with the default 3-level alphabet; the base raw signals are preserved
    verbatim but their symbols may re-bin.
    """
    if n_series < base.n_series:
        raise DatasetError(
            f"n_series {n_series} is below the base dataset's {base.n_series}"
        )
    rng = np.random.default_rng(seed)
    raw: dict[str, np.ndarray] = dict(base.raw)
    source_names = list(base.raw)
    n_instants = len(next(iter(base.raw.values())))
    for index in range(n_series - base.n_series):
        name = f"Syn{index:05d}"
        if rng.random() < 0.35:
            # Uncorrelated noise series -- prunable by A-STPM.
            raw[name] = rng.normal(0.0, 1.0, size=n_instants)
            continue
        source = raw[source_names[rng.integers(len(source_names))]]
        lag = int(rng.integers(0, 3 * base.ratio + 1))
        gain = float(rng.uniform(0.5, 1.5)) * (1 if rng.random() < 0.8 else -1)
        derived = lagged_response(source, lag=lag, gain=gain)
        raw[name] = noisy(rng, derived, derived_noise * max(derived.std(), 1e-9))
    scaled = symbolize(
        name=f"{base.name}-syn-ser{n_series}",
        raw=raw,
        levels={},
        ratio=base.ratio,
        dist_interval=base.dist_interval,
        description=f"{base.description} (scaled to {n_series} series)",
        sequence_unit=base.sequence_unit,
    )
    return scaled
