"""Synthetic scale-ups (paper Table V, synthetic rows).

The paper scales each real dataset to 1,000x more sequences and up to
10,000 time series for the scalability studies (Figs. 11-14).  We scale the
*simulated* datasets the same way:

* :func:`scale_sequences` rebuilds a dataset with a longer time axis;
* :func:`scale_series` derives extra series from the existing raw signals
  by random source selection, lag, gain and noise -- preserving the
  dataset's correlation structure so that A-STPM's MI screening stays
  meaningful at scale.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets.dataset import Dataset, symbolize
from repro.datasets.synthetic import lagged_response, noisy
from repro.exceptions import DatasetError

#: A dataset builder: (n_sequences, n_series, seed) -> Dataset.
Builder = Callable[..., Dataset]


def scale_sequences(builder: Builder, n_sequences: int, seed: int = 101, **kwargs) -> Dataset:
    """Rebuild a dataset with ``n_sequences`` temporal sequences."""
    if n_sequences < 4:
        raise DatasetError(f"n_sequences must be >= 4, got {n_sequences}")
    dataset = builder(n_sequences=n_sequences, seed=seed, **kwargs)
    dataset.name = f"{dataset.name}-syn-seq{n_sequences}"
    return dataset


def scale_series(
    base: Dataset,
    n_series: int,
    seed: int = 202,
    derived_noise: float = 0.35,
) -> Dataset:
    """Extend a dataset to ``n_series`` by deriving new series.

    Each derived series picks a random source series, applies a random lag
    (0..3 sequences worth of fine granules), a random gain, and fresh
    noise.  About a third of the derived series are pure noise, so the MI
    screening has genuinely uncorrelated series to prune (Table XI).

    Like the paper's synthetic datasets (which are generated wholesale
    rather than extended), the scaled dataset is re-symbolized uniformly
    with the default 3-level alphabet; the base raw signals are preserved
    verbatim but their symbols may re-bin.
    """
    if n_series < base.n_series:
        raise DatasetError(
            f"n_series {n_series} is below the base dataset's {base.n_series}"
        )
    rng = np.random.default_rng(seed)
    raw: dict[str, np.ndarray] = dict(base.raw)
    source_names = list(base.raw)
    n_instants = len(next(iter(base.raw.values())))
    for index in range(n_series - base.n_series):
        name = f"Syn{index:05d}"
        if rng.random() < 0.35:
            # Uncorrelated noise series -- prunable by A-STPM.
            raw[name] = rng.normal(0.0, 1.0, size=n_instants)
            continue
        source = raw[source_names[rng.integers(len(source_names))]]
        lag = int(rng.integers(0, 3 * base.ratio + 1))
        gain = float(rng.uniform(0.5, 1.5)) * (1 if rng.random() < 0.8 else -1)
        derived = lagged_response(source, lag=lag, gain=gain)
        raw[name] = noisy(rng, derived, derived_noise * max(derived.std(), 1e-9))
    scaled = symbolize(
        name=f"{base.name}-syn-ser{n_series}",
        raw=raw,
        levels={},
        ratio=base.ratio,
        dist_interval=base.dist_interval,
        description=f"{base.description} (scaled to {n_series} series)",
        sequence_unit=base.sequence_unit,
    )
    return scaled
