"""Signal building blocks for the dataset simulators.

All generators are pure functions of a :class:`numpy.random.Generator`, so
datasets are fully reproducible from their seed.  Time axes are in *fine
granules* (the instants of granularity G); seasonal structure is expressed
through a ``period`` in fine granules (e.g. one year).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError


def yearly_sinusoid(
    n: int, period: int, phase_frac: float = 0.0, amplitude: float = 1.0, base: float = 0.0
) -> np.ndarray:
    """A sinusoid peaking at ``phase_frac`` of each period.

    ``phase_frac = 0.5`` peaks mid-period (e.g. summer when the period
    starts in January).
    """
    if period < 1:
        raise DatasetError(f"period must be >= 1, got {period}")
    t = np.arange(n)
    return base + amplitude * np.cos(2.0 * np.pi * (t / period - phase_frac))


def daily_cycle(n: int, samples_per_day: int, amplitude: float = 1.0) -> np.ndarray:
    """A within-day cycle peaking at midday."""
    if samples_per_day < 1:
        raise DatasetError(f"samples_per_day must be >= 1, got {samples_per_day}")
    t = np.arange(n)
    return amplitude * np.maximum(
        0.0, np.sin(np.pi * ((t % samples_per_day) / samples_per_day))
    )


def seasonal_pulses(
    n: int,
    period: int,
    center_frac: float,
    width_frac: float,
    height: float = 1.0,
) -> np.ndarray:
    """Gaussian bumps recurring once per period (outbreaks, rainy seasons).

    ``center_frac`` places the bump inside the period; ``width_frac`` is
    the bump's standard deviation as a fraction of the period.
    """
    if not 0.0 < width_frac < 1.0:
        raise DatasetError(f"width_frac must be in (0, 1), got {width_frac}")
    t = np.arange(n)
    # Circular distance to the pulse center, in period fractions.
    position = (t / period - center_frac) % 1.0
    distance = np.minimum(position, 1.0 - position)
    return height * np.exp(-0.5 * (distance / width_frac) ** 2)


def lagged_response(
    signal: np.ndarray, lag: int, gain: float = 1.0, bias: float = 0.0
) -> np.ndarray:
    """``y[t] = gain * x[t - lag] + bias`` with edge padding."""
    if lag < 0:
        raise DatasetError(f"lag must be >= 0, got {lag}")
    if lag == 0:
        return gain * signal + bias
    shifted = np.concatenate([np.full(lag, signal[0]), signal[:-lag]])
    return gain * shifted + bias


def noisy(rng: np.random.Generator, signal: np.ndarray, scale: float) -> np.ndarray:
    """Add white Gaussian noise."""
    if scale < 0:
        raise DatasetError(f"noise scale must be >= 0, got {scale}")
    if scale == 0:
        return signal.copy()
    return signal + rng.normal(0.0, scale, size=signal.shape)


def clipped(signal: np.ndarray, low: float = 0.0, high: float | None = None) -> np.ndarray:
    """Clamp a signal to a physical range (e.g. non-negative power)."""
    return np.clip(signal, low, high)


def random_walk(rng: np.random.Generator, n: int, scale: float = 1.0) -> np.ndarray:
    """A zero-mean random walk (slow-moving background trends)."""
    return np.cumsum(rng.normal(0.0, scale, size=n))


def mix(*components: np.ndarray) -> np.ndarray:
    """Sum signal components (validates equal lengths)."""
    if not components:
        raise DatasetError("mix needs at least one component")
    length = len(components[0])
    for component in components[1:]:
        if len(component) != length:
            raise DatasetError("mix components must have equal lengths")
    return np.sum(components, axis=0)
