"""The :class:`Dataset` container shared by all simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MiningParams
from repro.exceptions import DatasetError
from repro.obs.trace import span
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.database import SymbolicDatabase
from repro.symbolic.mapping import QuantileMapper
from repro.symbolic.series import TimeSeries
from repro.transform.sequence_db import TemporalSequenceDatabase, build_sequence_database

#: Standard level alphabets, keyed by size.
LEVELS_3 = Alphabet.levels(("Low", "Medium", "High"))
LEVELS_5 = Alphabet.levels(("VeryLow", "Low", "Medium", "High", "VeryHigh"))


@dataclass
class Dataset:
    """A simulated dataset ready for mining.

    Attributes
    ----------
    name:
        Dataset identifier (``RE``, ``SC``, ``INF``, ``HFM``, or a scaled
        variant name).
    dsyb:
        The symbolic database at the fine granularity.
    ratio:
        The sequence-mapping ratio building DSEQ (fine granules per
        sequence).
    dist_interval:
        The paper's per-dataset season distance interval (Table VI),
        expressed in DSEQ granules.
    raw:
        The raw signals (kept for the scaling generators).
    description:
        Provenance note (what real-world extract this simulates).
    sequence_unit:
        Calendar unit of one DSEQ granule (``"day"`` or ``"week"``), used
        by the Table VIII style seasonal-occurrence attribution.
    """

    name: str
    dsyb: SymbolicDatabase
    ratio: int
    dist_interval: tuple[int, int]
    raw: dict[str, np.ndarray] = field(default_factory=dict)
    description: str = ""
    sequence_unit: str = "day"
    _dseq: TemporalSequenceDatabase | None = field(default=None, repr=False)

    @property
    def n_series(self) -> int:
        """Number of time series."""
        return len(self.dsyb)

    @property
    def n_sequences(self) -> int:
        """Number of temporal sequences (DSEQ granules)."""
        return self.dsyb.n_instants // self.ratio

    @property
    def n_events(self) -> int:
        """Number of distinct events actually occurring."""
        return len(self.dseq().events())

    def dseq(self) -> TemporalSequenceDatabase:
        """The temporal sequence database (built once, cached)."""
        if self._dseq is None:
            self._dseq = build_sequence_database(self.dsyb, self.ratio)
        return self._dseq

    def params(
        self,
        max_period_pct: float = 0.4,
        min_density_pct: float = 0.5,
        min_season: int = 4,
        max_pattern_length: int = 3,
    ) -> MiningParams:
        """Table VI style parameters resolved against this dataset."""
        return MiningParams.from_percentages(
            n_granules=self.n_sequences,
            max_period_pct=max_period_pct,
            min_density_pct=min_density_pct,
            dist_interval=self.dist_interval,
            min_season=min_season,
            max_pattern_length=max_pattern_length,
        )

    def summary(self) -> dict[str, int]:
        """The Table V row of this dataset."""
        dseq = self.dseq()
        n_sequences = len(dseq)
        return {
            "n_sequences": n_sequences,
            "n_time_series": self.n_series,
            "n_events": len(dseq.events()),
            "instances_per_sequence": round(dseq.total_instances() / n_sequences),
        }


def symbolize(
    name: str,
    raw: dict[str, np.ndarray],
    levels: dict[str, Alphabet],
    ratio: int,
    dist_interval: tuple[int, int],
    description: str,
    sequence_unit: str = "day",
) -> Dataset:
    """Quantile-symbolize raw signals into a :class:`Dataset`.

    ``levels`` maps each series name to its alphabet; missing names get
    the 3-level default.
    """
    if not raw:
        raise DatasetError(f"dataset {name!r} has no raw series")
    with span("dataset/symbolize", dataset=name, series=len(raw)):
        database = SymbolicDatabase()
        for series_name, values in raw.items():
            alphabet = levels.get(series_name, LEVELS_3)
            mapper = QuantileMapper(alphabet)
            database.add(mapper.encode(TimeSeries.from_array(series_name, values)))
    return Dataset(
        name=name,
        dsyb=database,
        ratio=ratio,
        dist_interval=dist_interval,
        raw=raw,
        description=description,
        sequence_unit=sequence_unit,
    )
