"""Dataset simulators (paper Sec. VI-A, Table V).

The paper evaluates on four real-world extracts -- renewable energy (RE,
Spain), smart city (SC, New York City), influenza (INF) and hand-foot-mouth
(HFM, both Kawasaki) -- plus synthetic scale-ups.  Those extracts are not
redistributable, so this subpackage builds *statistically faithful
simulators*: seeded generators that reproduce each dataset's shape
(#sequences, #series, #events) and inject the seasonal structures the
paper's qualitative results (Table VIII) report, e.g. winter wind driving
wind power, and influenza following cold humid weather.

Every generator is deterministic given its seed; the mining pipeline they
exercise (raw values -> symbolization -> DSYB -> DSEQ) is identical to what
the real extracts would drive.
"""

from repro.datasets.dataset import Dataset
from repro.datasets.energy import build_re
from repro.datasets.health import build_hfm, build_inf
from repro.datasets.registry import DATASET_BUILDERS, load_dataset
from repro.datasets.scaling import scale_sequences, scale_series
from repro.datasets.traffic import build_sc

__all__ = [
    "Dataset",
    "build_re",
    "build_sc",
    "build_inf",
    "build_hfm",
    "scale_series",
    "scale_sequences",
    "load_dataset",
    "DATASET_BUILDERS",
]
