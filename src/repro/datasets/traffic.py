"""The SC (smart city) dataset simulator.

Simulates the paper's New York City traffic + weather extract [48]: daily
temporal sequences with the congestion couplings of Table VIII --

* P8:  hot windy days -> high congestion (Jul-Aug);
* P9:  strong wind + unclear visibility -> high congestion;
* P10: heavy rain + unclear visibility -> high lane-blocked events;
* P11: heavy rain + strong wind -> high flow-incident counts.

Fine granularity is 3-hourly (8 samples/day), one DSEQ sequence per day.
Storm fronts recur on a ~73-day cycle, which is what gives traffic/weather
patterns many seasons (the paper's Table XIII counts).  Response series
(gusts, incidents, speeds) are monotone transforms of the measured
drivers -- the high-NMI families A-STPM retains -- while visibility,
humidity and snowfall are slow aperiodic walks that A-STPM prunes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import LEVELS_5, Dataset, symbolize
from repro.datasets.synthetic import (
    clipped,
    daily_cycle,
    lagged_response,
    mix,
    noisy,
    random_walk,
    seasonal_pulses,
    yearly_sinusoid,
)
from repro.exceptions import DatasetError

SAMPLES_PER_DAY = 8
SAMPLES_PER_YEAR = 365 * SAMPLES_PER_DAY
#: Storm-front cycle (~73 days): the sub-yearly weather regime.
STORM_CYCLE_DAYS = 73

#: All 14 series of the full profile.  Reduced profiles keep a prefix, so
#: the prefix mixes correlated families with prunable aperiodic series.
SC_SERIES = (
    "Temperature", "HeatIndex", "WindSpeed", "WindGust",
    "Precipitation", "LaneBlocked", "Visibility", "Humidity",
    "TrafficFlow", "Congestion", "AvgSpeed", "FlowIncident",
    "Accidents", "Snowfall",
)


def build_sc(
    n_sequences: int = 1249,
    n_series: int = 14,
    seed: int = 11,
    noise: float = 0.25,
) -> Dataset:
    """Build the SC dataset (defaults match Table V's 1249 x 14 shape)."""
    if not 1 <= n_series <= len(SC_SERIES):
        raise DatasetError(f"n_series must be in [1, {len(SC_SERIES)}], got {n_series}")
    if n_sequences < 8:
        raise DatasetError(f"n_sequences must be >= 8, got {n_sequences}")
    rng = np.random.default_rng(seed)
    n = n_sequences * SAMPLES_PER_DAY
    year = SAMPLES_PER_YEAR
    storm = STORM_CYCLE_DAYS * SAMPLES_PER_DAY

    def with_noise(values: np.ndarray, factor: float = noise) -> np.ndarray:
        return noisy(rng, values, factor * max(values.std(), 1e-9))

    # --- measured weather drivers ----------------------------------------
    temperature = with_noise(
        mix(
            yearly_sinusoid(n, year, phase_frac=0.55, amplitude=12.0, base=13.0),
            daily_cycle(n, SAMPLES_PER_DAY, amplitude=5.0),
        )
    )
    wind = with_noise(
        mix(
            yearly_sinusoid(n, year, phase_frac=0.55, amplitude=2.0, base=5.0),
            seasonal_pulses(n, storm, center_frac=0.5, width_frac=0.08, height=6.0),
        )
    )
    precipitation = with_noise(
        clipped(
            seasonal_pulses(n, storm, center_frac=0.55, width_frac=0.07, height=7.0)
            + seasonal_pulses(n, year, center_frac=0.02, width_frac=0.05, height=3.0)
            - 0.8
        )
    )
    traffic_flow = with_noise(
        mix(
            daily_cycle(n, SAMPLES_PER_DAY, amplitude=600.0),
            yearly_sinusoid(n, year, phase_frac=0.5, amplitude=120.0, base=1500.0),
            seasonal_pulses(n, storm, center_frac=0.5, width_frac=0.08, height=-250.0),
        ),
        factor=noise * 0.4,
    )

    # --- duplicate-family responses (monotone transforms, kept by MI) ----
    heat_index = lagged_response(temperature, lag=0, gain=1.1, bias=2.0)
    wind_gust = lagged_response(wind, lag=0, gain=1.5, bias=2.0)
    lane_blocked = lagged_response(precipitation, lag=0, gain=1.1, bias=0.5)
    flow_incident = lagged_response(precipitation, lag=0, gain=0.9, bias=0.2)
    congestion = lagged_response(traffic_flow, lag=0, gain=0.02, bias=-12.0)
    avg_speed = lagged_response(congestion, lag=0, gain=-0.7, bias=55.0)

    # --- weakly informative series (pruned by A-STPM) --------------------
    visibility = random_walk(rng, n, scale=0.02)
    humidity = random_walk(rng, n, scale=0.015)
    snowfall = random_walk(rng, n, scale=0.03)
    accidents = with_noise(
        clipped(
            lagged_response(precipitation, lag=SAMPLES_PER_DAY, gain=0.8)
            + 0.0001 * traffic_flow
        )
    )

    signals = {
        "Temperature": temperature,
        "HeatIndex": heat_index,
        "WindSpeed": wind,
        "WindGust": wind_gust,
        "Precipitation": precipitation,
        "LaneBlocked": lane_blocked,
        "Visibility": visibility,
        "Humidity": humidity,
        "TrafficFlow": traffic_flow,
        "Congestion": congestion,
        "AvgSpeed": avg_speed,
        "FlowIncident": flow_incident,
        "Accidents": accidents,
        "Snowfall": snowfall,
    }
    raw = {name: signals[name] for name in SC_SERIES[:n_series]}
    levels = {
        name: LEVELS_5
        for name in ("Temperature", "HeatIndex", "TrafficFlow", "Congestion")
        if name in raw
    }
    return symbolize(
        name="SC",
        raw=raw,
        levels=levels,
        ratio=SAMPLES_PER_DAY,
        dist_interval=(30, 330),
        description=(
            "Simulated NYC traffic + weather extract: daily sequences, "
            "storm-cycle + summer congestion / winter snow seasonality"
        ),
    )
