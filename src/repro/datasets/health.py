"""The INF and HFM (health) dataset simulators.

Simulate the paper's Kawasaki surveillance extracts [5] combined with
weather [6]: weekly temporal sequences of disease counts and weather, with
the couplings of Table VIII --

* P4/P5 (INF): cold, humid, windy, rainy winters -> influenza peaks
  (Jan-Feb);
* P6/P7 (HFM): hot, dry early summers -> hand-foot-mouth peaks (May-Jun).

Fine granularity is daily; each DSEQ sequence is one week (ratio 7).  The
default sizes match Table V (INF: 608 sequences x 25 series; HFM: 730 x
24).  Disease series get 5-level alphabets so "Very High Influenza Cases"
style events exist.  A secondary half-year epidemic wave (26 weeks) rides
on the yearly outbreak, which is what lets disease patterns accumulate
15-20 seasons over 12+ years (Tables X/XIV).

Series fall into three roles (see DESIGN.md):

* measured drivers (weather, case counts) -- seasonal signal + noise;
* duplicate families -- monotone transforms of a measured series (strain
  breakdowns, visit counts, min/max temperatures); these high-NMI pairs
  are what A-STPM's MI screening retains;
* aperiodic series (pressure, sunshine, admin signals) -- slow random
  walks that A-STPM prunes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import LEVELS_5, Dataset, symbolize
from repro.datasets.synthetic import (
    clipped,
    lagged_response,
    noisy,
    random_walk,
    seasonal_pulses,
    yearly_sinusoid,
)
from repro.exceptions import DatasetError

DAYS_PER_WEEK = 7
DAYS_PER_YEAR = 365
#: Epidemic wave cycle (~26 weeks): the secondary half-year wave.
WAVE_CYCLE_DAYS = 26 * DAYS_PER_WEEK

#: All 25 series of the INF profile (prefix order mixes families with
#: prunable series, as for the other datasets).
INF_SERIES = (
    "InfluenzaCases", "InfluenzaA", "Temperature", "TemperatureMin",
    "Humidity", "DewPoint", "Pressure", "Sunshine",
    "ILIVisits", "CasesChildren", "WindSpeed", "Precipitation", "RainDays",
    "TemperatureMax", "InfluenzaB", "Hospitalizations", "SchoolAbsences",
    "PharmacySales", "EmergencyCalls", "PositivityRate", "SentinelReports",
    "VaccinationRate", "SearchTrends", "CasesAdults", "CasesElderly",
)

#: All 24 series of the HFM profile.
HFM_SERIES = (
    "HFMCases", "HFMCasesNursery", "Temperature", "TemperatureMin",
    "Humidity", "DewPoint", "Pressure", "Sunshine",
    "PediatricVisits", "CasesUnder2", "WindSpeed", "Precipitation",
    "RainDays", "TemperatureMax", "HFMCasesKindergarten", "HerpanginaCases",
    "DaycareAbsences", "RashConsultations", "Cases2to5", "CasesOver5",
    "OutbreakReports", "HelplineCalls", "ClinicAlerts", "SurveillanceIndex",
)


def _weather(
    n: int, rng: np.random.Generator, noise: float
) -> dict[str, np.ndarray]:
    """Shared measured weather drivers + their families + prunables."""
    year = DAYS_PER_YEAR

    def with_noise(values: np.ndarray, factor: float = noise) -> np.ndarray:
        return noisy(rng, values, factor * max(values.std(), 1e-9))

    temperature = with_noise(
        yearly_sinusoid(n, year, phase_frac=0.55, amplitude=11.0, base=15.0)
    )
    humidity = with_noise(
        yearly_sinusoid(n, year, phase_frac=0.6, amplitude=0.15, base=0.65)
    )
    wind = with_noise(
        yearly_sinusoid(n, year, phase_frac=0.05, amplitude=2.5, base=5.0)
        + seasonal_pulses(n, WAVE_CYCLE_DAYS, center_frac=0.4, width_frac=0.08, height=4.0)
    )
    precipitation = with_noise(
        clipped(
            seasonal_pulses(n, WAVE_CYCLE_DAYS, center_frac=0.45, width_frac=0.09, height=6.0)
            - 0.8
        )
    )
    return {
        "Temperature": temperature,
        "TemperatureMin": lagged_response(temperature, lag=0, gain=1.0, bias=-5.0),
        "TemperatureMax": lagged_response(temperature, lag=0, gain=1.0, bias=5.0),
        "Humidity": humidity,
        "DewPoint": lagged_response(humidity, lag=0, gain=20.0, bias=-10.0),
        "WindSpeed": wind,
        "Precipitation": precipitation,
        "RainDays": lagged_response(precipitation, lag=0, gain=0.6, bias=0.1),
        "Pressure": random_walk(rng, n, scale=0.05),
        "Sunshine": random_walk(rng, n, scale=0.02),
    }


def _epidemic(
    n: int,
    center_frac: float,
    width_frac: float,
    height: float,
    wave_center: float,
    wave_height: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A yearly outbreak plus a half-year wave, with yearly intensity
    variation."""
    base = seasonal_pulses(n, DAYS_PER_YEAR, center_frac, width_frac, height)
    n_years = n // DAYS_PER_YEAR + 2
    intensity = np.repeat(rng.uniform(0.7, 1.3, size=n_years), DAYS_PER_YEAR)[:n]
    wave = seasonal_pulses(
        n, WAVE_CYCLE_DAYS, center_frac=wave_center, width_frac=0.08, height=wave_height
    )
    return base * intensity + wave


def build_inf(
    n_sequences: int = 608,
    n_series: int = 25,
    seed: int = 13,
    noise: float = 0.2,
) -> Dataset:
    """Build the INF dataset (weekly sequences; default 608 x 25)."""
    if not 1 <= n_series <= len(INF_SERIES):
        raise DatasetError(f"n_series must be in [1, {len(INF_SERIES)}], got {n_series}")
    if n_sequences < 4:
        raise DatasetError(f"n_sequences must be >= 4, got {n_sequences}")
    rng = np.random.default_rng(seed)
    n = n_sequences * DAYS_PER_WEEK
    signals = _weather(n, rng, noise)

    def with_noise(values: np.ndarray, factor: float = noise) -> np.ndarray:
        return noisy(rng, values, factor * max(values.std(), 1e-9))

    # Influenza peaks mid-winter, driven by cold + humid conditions ~1-2
    # weeks earlier, with the half-year wave on top.
    outbreak = _epidemic(
        n, center_frac=0.08, width_frac=0.05, height=100.0,
        wave_center=0.5, wave_height=45.0, rng=rng,
    )
    driver = clipped(
        lagged_response(-signals["Temperature"], lag=12, gain=1.2, bias=18.0)
    ) * clipped(lagged_response(signals["Humidity"], lag=12, gain=1.0))
    cases = with_noise(clipped(outbreak + 2.0 * driver), factor=noise * 0.5)

    signals.update(
        {
            "InfluenzaCases": cases,
            # Duplicate family: strain/visit breakdowns of the same counts.
            "InfluenzaA": lagged_response(cases, lag=0, gain=0.65),
            "ILIVisits": lagged_response(cases, lag=0, gain=1.8, bias=20.0),
            "CasesChildren": lagged_response(cases, lag=0, gain=0.5),
            # Lagged / noisy surveillance channels (moderate NMI).
            "InfluenzaB": with_noise(clipped(lagged_response(cases, lag=5, gain=0.3))),
            "Hospitalizations": with_noise(clipped(lagged_response(cases, lag=4, gain=0.12))),
            "SchoolAbsences": with_noise(clipped(lagged_response(cases, lag=3, gain=0.5, bias=5.0))),
            "PharmacySales": with_noise(clipped(lagged_response(cases, lag=1, gain=0.9, bias=30.0))),
            "EmergencyCalls": with_noise(clipped(lagged_response(cases, lag=2, gain=0.2, bias=8.0))),
            "PositivityRate": with_noise(clipped(lagged_response(cases, lag=1, gain=0.006, bias=0.05))),
            "SentinelReports": with_noise(clipped(lagged_response(cases, lag=1, gain=0.08, bias=1.0))),
            "SearchTrends": with_noise(clipped(lagged_response(cases, lag=2, gain=0.7, bias=4.0))),
            "CasesAdults": with_noise(clipped(lagged_response(cases, lag=1, gain=0.35))),
            "CasesElderly": with_noise(clipped(lagged_response(cases, lag=2, gain=0.15))),
            # Administrative, aperiodic.
            "VaccinationRate": random_walk(rng, n, scale=0.01),
        }
    )
    raw = {name: signals[name] for name in INF_SERIES[:n_series]}
    levels = {
        name: LEVELS_5
        for name in (
            "InfluenzaCases", "InfluenzaA", "ILIVisits", "CasesChildren",
            "Temperature", "TemperatureMin", "TemperatureMax",
        )
        if name in raw
    }
    return symbolize(
        name="INF",
        raw=raw,
        levels=levels,
        ratio=DAYS_PER_WEEK,
        dist_interval=(10, 50),
        sequence_unit="week",
        description=(
            "Simulated Kawasaki influenza surveillance + weather extract: "
            "weekly sequences, winter outbreak + half-year wave seasonality"
        ),
    )


def build_hfm(
    n_sequences: int = 730,
    n_series: int = 24,
    seed: int = 17,
    noise: float = 0.2,
) -> Dataset:
    """Build the HFM dataset (weekly sequences; default 730 x 24)."""
    if not 1 <= n_series <= len(HFM_SERIES):
        raise DatasetError(f"n_series must be in [1, {len(HFM_SERIES)}], got {n_series}")
    if n_sequences < 4:
        raise DatasetError(f"n_sequences must be >= 4, got {n_sequences}")
    rng = np.random.default_rng(seed)
    n = n_sequences * DAYS_PER_WEEK
    signals = _weather(n, rng, noise)

    def with_noise(values: np.ndarray, factor: float = noise) -> np.ndarray:
        return noisy(rng, values, factor * max(values.std(), 1e-9))

    # HFM peaks late spring / early summer, driven by warm dry conditions
    # a week or two earlier, with the half-year wave on top.
    outbreak = _epidemic(
        n, center_frac=0.42, width_frac=0.05, height=80.0,
        wave_center=0.2, wave_height=35.0, rng=rng,
    )
    driver = clipped(
        lagged_response(signals["Temperature"], lag=10, gain=0.9, bias=-8.0)
    ) * clipped(lagged_response(-signals["Humidity"], lag=10, gain=1.0, bias=0.75))
    cases = with_noise(clipped(outbreak + 2.0 * driver), factor=noise * 0.5)

    signals.update(
        {
            "HFMCases": cases,
            # Duplicate family.
            "HFMCasesNursery": lagged_response(cases, lag=0, gain=0.5),
            "PediatricVisits": lagged_response(cases, lag=0, gain=1.5, bias=25.0),
            "CasesUnder2": lagged_response(cases, lag=0, gain=0.45),
            # Lagged / noisy channels.
            "HFMCasesKindergarten": with_noise(clipped(lagged_response(cases, lag=1, gain=0.3))),
            "HerpanginaCases": with_noise(clipped(lagged_response(cases, lag=6, gain=0.4))),
            "DaycareAbsences": with_noise(clipped(lagged_response(cases, lag=3, gain=0.6, bias=4.0))),
            "RashConsultations": with_noise(clipped(lagged_response(cases, lag=2, gain=0.35, bias=3.0))),
            "Cases2to5": with_noise(clipped(lagged_response(cases, lag=0, gain=0.4))),
            "CasesOver5": with_noise(clipped(lagged_response(cases, lag=1, gain=0.15))),
            "HelplineCalls": with_noise(clipped(lagged_response(cases, lag=1, gain=0.25, bias=5.0))),
            "OutbreakReports": with_noise(clipped(lagged_response(cases, lag=4, gain=0.05))),
            # Administrative, aperiodic.
            "ClinicAlerts": random_walk(rng, n, scale=0.02),
            "SurveillanceIndex": random_walk(rng, n, scale=0.01),
        }
    )
    raw = {name: signals[name] for name in HFM_SERIES[:n_series]}
    levels = {
        name: LEVELS_5
        for name in (
            "HFMCases", "HFMCasesNursery", "PediatricVisits", "CasesUnder2",
            "Temperature", "TemperatureMin", "TemperatureMax",
        )
        if name in raw
    }
    return symbolize(
        name="HFM",
        raw=raw,
        levels=levels,
        ratio=DAYS_PER_WEEK,
        dist_interval=(10, 50),
        sequence_unit="week",
        description=(
            "Simulated Kawasaki hand-foot-mouth surveillance + weather "
            "extract: weekly sequences, early-summer outbreak + half-year "
            "wave seasonality"
        ),
    )
