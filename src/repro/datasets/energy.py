"""The RE (renewable energy) dataset simulator.

Simulates the paper's Spanish energy + weather extract (ENTSO-E [47] +
OpenWeather [6]): daily temporal sequences over four years, with the
seasonal couplings the paper's Table VIII reports --

* P1: strong winter wind -> high wind power (Dec-Feb);
* P2: low winter temperature -> high energy consumption (Dec-Feb);
* P3: clear hot summer days -> high solar power (Jul-Aug).

The fine granularity is 3-hourly (8 samples/day); each DSEQ sequence is
one day.  Weather drivers are sinusoids + noise; power/market series are
lagged responses of the drivers, giving the MI screening of A-STPM real
correlation structure to find.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import LEVELS_5, Dataset, symbolize
from repro.datasets.synthetic import (
    clipped,
    daily_cycle,
    lagged_response,
    mix,
    noisy,
    random_walk,
    seasonal_pulses,
    yearly_sinusoid,
)
from repro.exceptions import DatasetError

#: Fine samples per day (3-hourly) -- the DSEQ mapping ratio.
SAMPLES_PER_DAY = 8
#: Fine samples per simulated year.
SAMPLES_PER_YEAR = 365 * SAMPLES_PER_DAY
#: The Atlantic storm-cycle period (~73 days, 5 cycles/year).  Real energy
#: data shows sub-yearly weather regimes; this is what lets patterns keep
#: 12-20 seasons over 4 years, as the paper's Table IX counts imply.
STORM_CYCLE_DAYS = 73

#: All 21 series of the full profile.  The order matters: reduced profiles
#: keep a prefix, so the prefix mixes correlated families (temperature,
#: wind/wind-power, solar) with weakly-seasonal series that A-STPM can
#: prune (humidity, cloud cover).
RE_SERIES = (
    "Temperature", "TemperatureSouth", "WindSpeed", "WindPower",
    "SolarIrradiance", "SolarPower", "Humidity", "CloudCover",
    "WindSpeedNorth", "Precipitation", "HydroPower", "Pressure",
    "Demand", "DemandIndustrial", "DemandHousehold", "GasPower",
    "CoalPower", "Price", "ImportFlow", "ExportFlow", "ReserveMargin",
)


def build_re(
    n_sequences: int = 1460,
    n_series: int = 21,
    seed: int = 7,
    noise: float = 0.25,
) -> Dataset:
    """Build the RE dataset.

    Parameters
    ----------
    n_sequences:
        Number of days (the paper uses 1460 = 4 years).
    n_series:
        How many of the 21 series to keep (prefix of :data:`RE_SERIES`);
        benchmark profiles use fewer for laptop-scale runtimes.
    seed:
        RNG seed (datasets are fully deterministic).
    noise:
        White-noise scale added to every series.
    """
    if not 1 <= n_series <= len(RE_SERIES):
        raise DatasetError(f"n_series must be in [1, {len(RE_SERIES)}], got {n_series}")
    if n_sequences < 8:
        raise DatasetError(f"n_sequences must be >= 8, got {n_sequences}")
    rng = np.random.default_rng(seed)
    n = n_sequences * SAMPLES_PER_DAY
    year = SAMPLES_PER_YEAR
    storm = STORM_CYCLE_DAYS * SAMPLES_PER_DAY

    def with_noise(values: np.ndarray, factor: float = noise) -> np.ndarray:
        return noisy(rng, values, factor * max(values.std(), 1e-9))

    # --- weather drivers (measured = clean + noise) ----------------------
    temperature = with_noise(
        mix(
            yearly_sinusoid(n, year, phase_frac=0.55, amplitude=10.0, base=15.0),
            daily_cycle(n, SAMPLES_PER_DAY, amplitude=4.0),
        )
    )
    # Wind: winter-heavy yearly envelope plus the storm-cycle bursts.
    wind = with_noise(
        mix(
            yearly_sinusoid(n, year, phase_frac=0.04, amplitude=2.5, base=7.0),
            seasonal_pulses(n, storm, center_frac=0.5, width_frac=0.09, height=8.0),
        )
    )
    # Humidity, cloud cover and pressure are deliberately aperiodic (slow
    # random walks): they are the "unpromising" series A-STPM is designed
    # to prune, and their irregular occurrence blocks fail the seasonal
    # criteria increasingly often as the thresholds rise.
    clouds = random_walk(rng, n, scale=0.02)
    irradiance = with_noise(
        clipped(
            mix(
                yearly_sinusoid(n, year, phase_frac=0.55, amplitude=300.0, base=400.0),
                daily_cycle(n, SAMPLES_PER_DAY, amplitude=400.0),
            )
        )
    )
    humidity = random_walk(rng, n, scale=0.015)
    precipitation = with_noise(
        clipped(
            seasonal_pulses(n, storm, center_frac=0.6, width_frac=0.08, height=6.0)
            + seasonal_pulses(n, year, center_frac=0.85, width_frac=0.06, height=3.0)
            - 1.0
        )
    )
    pressure = random_walk(rng, n, scale=0.05)

    # --- duplicate-family and response series ----------------------------
    # Responses derive from the *measured* (noisy) drivers as monotone
    # transforms: real energy data contains such near-duplicate families
    # (regional temperatures, generation vs its driver), and those
    # high-NMI pairs are exactly what A-STPM's mu ~ 0.9 threshold
    # (Corollary 1.1) is designed to retain.
    temperature_south = lagged_response(temperature, lag=0, gain=1.05, bias=4.0)
    wind_north = lagged_response(wind, lag=0, gain=1.1, bias=1.0)
    wind_power = lagged_response(wind, lag=0, gain=120.0, bias=-400.0)
    solar_power = lagged_response(irradiance, lag=0, gain=2.2, bias=30.0)
    hydro_power = lagged_response(precipitation, lag=0, gain=180.0, bias=120.0)
    demand = with_noise(
        mix(
            yearly_sinusoid(n, year, phase_frac=0.03, amplitude=900.0, base=4200.0),
            daily_cycle(n, SAMPLES_PER_DAY, amplitude=700.0),
            lagged_response(temperature, lag=0, gain=-25.0),
        ),
        factor=noise * 0.4,
    )
    demand_industrial = lagged_response(demand, lag=0, gain=0.45, bias=300.0)
    demand_household = lagged_response(demand, lag=0, gain=0.4, bias=100.0)
    residual = demand - wind_power - solar_power - hydro_power
    gas_power = with_noise(clipped(lagged_response(residual, lag=0, gain=0.6)))
    coal_power = with_noise(clipped(lagged_response(residual, lag=2, gain=0.3)))
    price = with_noise(lagged_response(residual, lag=0, gain=0.012, bias=18.0))
    import_flow = with_noise(clipped(lagged_response(residual, lag=1, gain=0.08, bias=-50.0)))
    export_flow = with_noise(clipped(lagged_response(wind_power + solar_power, lag=1, gain=0.1, bias=-60.0)))
    reserve_margin = with_noise(lagged_response(demand, lag=0, gain=-0.2, bias=2200.0))

    signals = {
        "Temperature": temperature,
        "TemperatureSouth": temperature_south,
        "WindSpeed": wind,
        "WindSpeedNorth": wind_north,
        "CloudCover": clouds,
        "SolarIrradiance": irradiance,
        "Humidity": humidity,
        "Precipitation": precipitation,
        "Pressure": pressure,
        "WindPower": wind_power,
        "SolarPower": solar_power,
        "HydroPower": hydro_power,
        "GasPower": gas_power,
        "CoalPower": coal_power,
        "Demand": demand,
        "DemandIndustrial": demand_industrial,
        "DemandHousehold": demand_household,
        "Price": price,
        "ImportFlow": import_flow,
        "ExportFlow": export_flow,
        "ReserveMargin": reserve_margin,
    }
    raw = {name: signals[name] for name in RE_SERIES[:n_series]}
    # 5-level alphabets for the headline series push the event count toward
    # the paper's 102 on the full profile; family members share alphabets
    # so NMI is measured on comparable symbol distributions.
    levels = {
        name: LEVELS_5
        for name in (
            "Temperature", "TemperatureSouth", "WindSpeed", "WindSpeedNorth",
            "WindPower", "Demand", "DemandIndustrial", "DemandHousehold",
        )
        if name in raw
    }
    return symbolize(
        name="RE",
        raw=raw,
        levels=levels,
        ratio=SAMPLES_PER_DAY,
        dist_interval=(30, 330),
        description=(
            "Simulated Spanish renewable-energy + weather extract "
            "(ENTSO-E/OpenWeather shape): daily sequences, yearly + "
            "storm-cycle seasonality"
        ),
    )
